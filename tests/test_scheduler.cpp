// Continuous-batching scheduler suite: packed multi-row decode steps must be
// bit-identical to serial per-sentence decode (greedy and beam) on all three
// backends, through ragged finish times, slot refills, work stealing, and
// adversarial shapes (one sentence on an 8-card farm, max_len = 1, duplicate
// sources). Also pins the modeled win: packing beats PR 2's one-row steps in
// modeled sentences/sec and SA utilization.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.hpp"
#include "core/backend.hpp"
#include "nlp/synthetic.hpp"
#include "quant/qtransformer.hpp"
#include "reference/search.hpp"
#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"

namespace tfacc {
namespace {

// Multi-layer, multi-head micro model for the FP32 reference backend.
ModelConfig micro_config() {
  ModelConfig cfg;
  cfg.name = "sched-micro";
  cfg.d_model = 32;
  cfg.d_ff = 128;
  cfg.num_heads = 2;
  cfg.head_dim = 16;
  cfg.num_encoder_layers = 2;
  cfg.num_decoder_layers = 2;
  return cfg;
}

// Hardware-compatible model (head_dim 64 = SA columns) for the quantized and
// accelerator backends.
ModelConfig hw_config() {
  ModelConfig cfg;
  cfg.name = "sched-hw";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 2;
  return cfg;
}

// Ragged source lengths (1..7 tokens) so sentences finish at wildly
// different steps and slots churn; includes a duplicate pair and padding.
std::vector<TokenSeq> ragged_sources() {
  return {{3, 4, 5, 6},
          {7},
          {10, 3, 11, 4, 12, 5, 13},
          {5, 5, 6},
          {3, 4, 5, 6},  // duplicate of sources[0]
          {8, 9, kPadId, kPadId},
          {6, 7, 8, 9, 10, 11},
          {4}};
}

std::vector<TokenSeq> calib_sources() { return {{3, 4, 5}, {6, 7}}; }

SchedulerConfig base_config(ServeBackend backend, int cards, int slots,
                            int max_len = 12) {
  SchedulerConfig cfg;
  cfg.backend = backend;
  cfg.num_cards = cards;
  cfg.slots_per_card = slots;
  cfg.max_len = max_len;
  return cfg;
}

/// Serial per-sentence greedy decode with the same backend the scheduler
/// installs — the bit-identity baseline.
std::vector<TokenSeq> serial_greedy(Transformer& model, ServeBackend backend,
                                    const QuantizedTransformer* qt,
                                    const std::vector<TokenSeq>& sources,
                                    int max_len) {
  Accelerator acc;
  switch (backend) {
    case ServeBackend::kReference:
      model.set_backend(ResBlockBackend{});
      break;
    case ServeBackend::kQuantized:
      model.set_backend(qt->backend());
      break;
    case ServeBackend::kAccelerator:
      model.set_backend(accelerator_backend(*qt, acc, nullptr));
      break;
  }
  std::vector<TokenSeq> out;
  for (const TokenSeq& src : sources)
    out.push_back(model.translate_greedy(src, max_len));
  model.set_backend(ResBlockBackend{});
  return out;
}

// --- RequestQueue -------------------------------------------------------------

TEST(RequestQueue, SingleShardFifoOrder) {
  RequestQueue q(1);
  for (std::uint64_t i = 0; i < 5; ++i) q.push({i, {3}});
  q.close();
  TranslationRequest req;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(0, req));
    EXPECT_EQ(req.id, i);
  }
  EXPECT_FALSE(q.try_pop(0, req));
  EXPECT_TRUE(q.closed());
}

TEST(RequestQueue, StealsFromLoadedSibling) {
  RequestQueue q(3);
  // Round-robin deal: ids 0,3 -> shard 0; 1,4 -> shard 1; 2 -> shard 2.
  for (std::uint64_t i = 0; i < 5; ++i) q.push({i, {3}});
  TranslationRequest req;
  // Drain shard 2's own item, then force it to steal twice.
  ASSERT_TRUE(q.try_pop(2, req));
  EXPECT_EQ(req.id, 2u);
  std::set<std::uint64_t> stolen;
  ASSERT_TRUE(q.try_pop(2, req));
  stolen.insert(req.id);
  ASSERT_TRUE(q.try_pop(2, req));
  stolen.insert(req.id);
  // Thieves take the back of a sibling deque.
  EXPECT_TRUE(stolen.count(3) == 1 || stolen.count(4) == 1);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(RequestQueue, RejectsBadShard) {
  RequestQueue q(2);
  TranslationRequest req;
  EXPECT_THROW(q.try_pop(2, req), CheckError);
  EXPECT_THROW(RequestQueue(0), CheckError);
}

// --- Config validation --------------------------------------------------------

TEST(SchedulerConfig, RejectsBadArguments) {
  SchedulerConfig cfg;
  cfg.num_cards = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.num_cards = 1;
  cfg.max_len = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.max_len = 8;
  cfg.beam_size = -1;
  EXPECT_THROW(cfg.validate(), CheckError);
  // A sentence's beam hypotheses must fit its card's slots.
  cfg.beam_size = 4;
  cfg.slots_per_card = 3;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.slots_per_card = 4;
  EXPECT_NO_THROW(cfg.validate());
}

// --- decode_step_batch row-equivalence (all three backends) -------------------

// Lockstep packed-vs-serial logits: three hypotheses at ragged positions fed
// forced tokens; every packed logits row must equal the serial decode_step
// row bitwise. Run against each backend's batch hook.
void check_decode_step_batch(Transformer& model) {
  const std::vector<TokenSeq> srcs = {{3, 4, 5}, {6, 7}, {8, 9, 10, 3}};
  std::vector<MatF> memories;
  std::vector<DecodeState> packed, serial;
  for (const TokenSeq& src : srcs) {
    memories.push_back(model.encode(src));
    packed.push_back(
        model.begin_decode(memories.back(), static_cast<int>(src.size())));
    serial.push_back(
        model.begin_decode(memories.back(), static_cast<int>(src.size())));
  }
  // Desynchronize positions: advance hypothesis 2 by two forced steps.
  for (int warm = 0; warm < 2; ++warm) {
    (void)model.decode_step(packed[2], warm == 0 ? kBosId : 5);
    (void)model.decode_step(serial[2], warm == 0 ? kBosId : 5);
  }
  std::vector<int> tokens = {kBosId, kBosId, 7};
  for (int step = 0; step < 4; ++step) {
    std::vector<DecodeState*> states;
    for (auto& s : packed) states.push_back(&s);
    const auto batch = model.decode_step_batch(states, tokens);
    ASSERT_EQ(batch.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      const auto one = model.decode_step(serial[i], tokens[i]);
      ASSERT_EQ(batch[i].size(), one.size());
      for (std::size_t c = 0; c < one.size(); ++c)
        ASSERT_EQ(batch[i][c], one[c])
            << "step " << step << " hyp " << i << " logit " << c;
      // Feed the argmax next, like a real greedy loop.
      tokens[i] = static_cast<int>(
          std::max_element(one.begin(), one.end()) - one.begin());
      if (tokens[i] == kEosId) tokens[i] = 3;  // keep all slots live
    }
  }
}

TEST(DecodeStepBatch, ReferenceBackendBitIdentical) {
  Rng rng(81);
  Transformer model(TransformerWeights::random(micro_config(), 20, rng));
  ASSERT_TRUE(ResBlockBackend{}.supports_batched_decode());
  check_decode_step_batch(model);
}

TEST(DecodeStepBatch, QuantizedBackendBitIdentical) {
  Rng rng(82);
  Transformer model(TransformerWeights::random(hw_config(), 20, rng));
  const auto qt = QuantizedTransformer::build(model, calib_sources(), 12,
                                              SoftmaxImpl::kHardware);
  ASSERT_TRUE(qt.backend().supports_batched_decode());
  model.set_backend(qt.backend());
  check_decode_step_batch(model);
  model.set_backend(ResBlockBackend{});
}

TEST(DecodeStepBatch, AcceleratorBackendBitIdentical) {
  Rng rng(83);
  Transformer model(TransformerWeights::random(hw_config(), 20, rng));
  const auto qt = QuantizedTransformer::build(model, calib_sources(), 12,
                                              SoftmaxImpl::kHardware);
  Accelerator acc;
  AcceleratorStats stats;
  model.set_backend(accelerator_backend(qt, acc, &stats));
  check_decode_step_batch(model);
  model.set_backend(ResBlockBackend{});
  EXPECT_GT(stats.mha_runs, 0);
  EXPECT_GT(stats.sa_busy_cycles, 0);
}

// An overridden mha without a batch hook must not reach the reference batch
// default: decode_step_batch falls back to the (trusted) serial path.
TEST(DecodeStepBatch, PartialOverrideFallsBackToSerial) {
  ResBlockBackend partial;
  partial.mha_cached = [](const MatF& q, MhaCache& cache, const MhaWeights& w,
                          const Mask& m, bool append) {
    return ref_mha_cached(q, cache, w, m, append);
  };
  EXPECT_TRUE(partial.supports_cached_decode());
  EXPECT_FALSE(partial.supports_batched_decode());
}

// --- Scheduler bit-identity ---------------------------------------------------

TEST(SchedulerReference, RaggedGreedyBitIdenticalToSerial) {
  Rng rng(91);
  const TransformerWeights weights =
      TransformerWeights::random(micro_config(), 20, rng);
  Transformer model(weights);
  const auto serial =
      serial_greedy(model, ServeBackend::kReference, nullptr,
                    ragged_sources(), 12);

  for (const int slots : {1, 3, 8}) {
    Scheduler sched(weights, {},
                    base_config(ServeBackend::kReference, 2, slots));
    const ScheduleReport rep = sched.run(ragged_sources());
    ASSERT_EQ(rep.outputs.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(rep.outputs[i], serial[i])
          << "slots " << slots << " sentence " << i;
  }
}

TEST(SchedulerQuantized, RaggedGreedyBitIdenticalToSerial) {
  Rng rng(92);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Transformer model(weights);
  const auto qt = QuantizedTransformer::build(model, calib_sources(), 12,
                                              SoftmaxImpl::kHardware);
  const auto serial = serial_greedy(model, ServeBackend::kQuantized, &qt,
                                    ragged_sources(), 12);

  Scheduler sched(weights, calib_sources(),
                  base_config(ServeBackend::kQuantized, 2, 4));
  const ScheduleReport rep = sched.run(ragged_sources());
  ASSERT_EQ(rep.outputs.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(rep.outputs[i], serial[i]) << "sentence " << i;
}

TEST(SchedulerAccelerator, RaggedGreedyBitIdenticalToSerial) {
  Rng rng(93);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Transformer model(weights);
  const auto qt = QuantizedTransformer::build(model, calib_sources(), 12,
                                              SoftmaxImpl::kHardware);
  const auto serial = serial_greedy(model, ServeBackend::kAccelerator, &qt,
                                    ragged_sources(), 12);

  for (const int slots : {1, 4, 8}) {
    Scheduler sched(weights, calib_sources(),
                    base_config(ServeBackend::kAccelerator, 2, slots));
    const ScheduleReport rep = sched.run(ragged_sources());
    ASSERT_EQ(rep.outputs.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(rep.outputs[i], serial[i])
          << "slots " << slots << " sentence " << i;
  }
}

TEST(SchedulerAccelerator, BeamBitIdenticalToSerial) {
  Rng rng(94);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Transformer model(weights);
  const auto qt = QuantizedTransformer::build(model, calib_sources(), 10,
                                              SoftmaxImpl::kHardware);
  Accelerator acc;
  Transformer::BeamConfig beam;
  beam.beam_size = 3;
  model.set_backend(accelerator_backend(qt, acc, nullptr));
  std::vector<TokenSeq> serial;
  for (const TokenSeq& src : ragged_sources())
    serial.push_back(model.translate_beam(src, 10, beam));
  model.set_backend(ResBlockBackend{});

  // Beam hypotheses of one sentence become sibling slots of the packed step:
  // 6 slots hold two sentences' beams at once.
  SchedulerConfig cfg = base_config(ServeBackend::kAccelerator, 2, 6, 10);
  cfg.beam_size = 3;
  Scheduler sched(weights, calib_sources(), cfg);
  const ScheduleReport rep = sched.run(ragged_sources());
  ASSERT_EQ(rep.outputs.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(rep.outputs[i], serial[i]) << "sentence " << i;
}

TEST(SchedulerReference, BeamBitIdenticalToSerial) {
  Rng rng(95);
  const TransformerWeights weights =
      TransformerWeights::random(micro_config(), 20, rng);
  Transformer model(weights);
  Transformer::BeamConfig beam;
  beam.beam_size = 3;
  std::vector<TokenSeq> serial;
  for (const TokenSeq& src : ragged_sources())
    serial.push_back(model.translate_beam(src, 10, beam));

  SchedulerConfig cfg = base_config(ServeBackend::kReference, 1, 9, 10);
  cfg.beam_size = 3;
  Scheduler sched(weights, {}, cfg);
  const ScheduleReport rep = sched.run(ragged_sources());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(rep.outputs[i], serial[i]) << "sentence " << i;
}

// --- Adversarial shapes -------------------------------------------------------

TEST(SchedulerShapes, OneSentenceOnEightCardFarm) {
  Rng rng(101);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Transformer model(weights);
  const auto qt = QuantizedTransformer::build(model, calib_sources(), 12,
                                              SoftmaxImpl::kHardware);
  const auto serial = serial_greedy(model, ServeBackend::kAccelerator, &qt,
                                    {{3, 4, 5, 6}}, 12);

  Scheduler sched(weights, calib_sources(),
                  base_config(ServeBackend::kAccelerator, 8, 4));
  const ScheduleReport rep = sched.run({{3, 4, 5, 6}});
  ASSERT_EQ(rep.outputs.size(), 1u);
  EXPECT_EQ(rep.outputs[0], serial[0]);
  ASSERT_EQ(rep.per_card.size(), 8u);
  // Exactly one card decoded it; the other seven found the queue empty.
  int busy = 0, sentences = 0;
  for (std::size_t c = 0; c < rep.per_card.size(); ++c) {
    if (rep.per_card[c].total_cycles() > 0) ++busy;
    sentences += rep.per_card_steps[c].sentences;
  }
  EXPECT_EQ(busy, 1);
  EXPECT_EQ(sentences, 1);
}

TEST(SchedulerShapes, MaxLenOne) {
  Rng rng(102);
  const TransformerWeights weights =
      TransformerWeights::random(micro_config(), 20, rng);
  Transformer model(weights);
  std::vector<TokenSeq> serial;
  for (const TokenSeq& src : ragged_sources())
    serial.push_back(model.translate_greedy(src, 1));

  Scheduler sched(weights, {},
                  base_config(ServeBackend::kReference, 2, 4, /*max_len=*/1));
  const ScheduleReport rep = sched.run(ragged_sources());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(rep.outputs[i], serial[i]) << "sentence " << i;
    EXPECT_LE(rep.outputs[i].size(), 1u);
  }
}

TEST(SchedulerShapes, DuplicateSourcesDecodeIdentically) {
  Rng rng(103);
  const TransformerWeights weights =
      TransformerWeights::random(micro_config(), 20, rng);
  const std::vector<TokenSeq> sources(6, TokenSeq{3, 4, 5, 6});
  Transformer model(weights);
  const TokenSeq serial = model.translate_greedy(sources[0], 12);

  Scheduler sched(weights, {}, base_config(ServeBackend::kReference, 3, 2));
  const ScheduleReport rep = sched.run(sources);
  for (std::size_t i = 0; i < sources.size(); ++i)
    EXPECT_EQ(rep.outputs[i], serial) << "sentence " << i;
}

TEST(SchedulerShapes, EmptyBatch) {
  Rng rng(104);
  const TransformerWeights weights =
      TransformerWeights::random(micro_config(), 20, rng);
  Scheduler sched(weights, {}, base_config(ServeBackend::kReference, 2, 4));
  const ScheduleReport rep = sched.run({});
  EXPECT_EQ(rep.sentences(), 0);
  EXPECT_EQ(rep.packed_steps(), 0l);
  EXPECT_EQ(rep.packed_rows_mean(), 0.0);
}

TEST(SchedulerShapes, FullRecomputeModeMatchesCachedOutputs) {
  Rng rng(105);
  const TransformerWeights weights =
      TransformerWeights::random(micro_config(), 20, rng);
  Scheduler cached(weights, {}, base_config(ServeBackend::kReference, 1, 4));
  SchedulerConfig recompute_cfg = base_config(ServeBackend::kReference, 1, 4);
  recompute_cfg.decode = DecodeMode::kFullRecompute;
  Scheduler recompute(weights, {}, recompute_cfg);
  const auto a = cached.run(ragged_sources());
  const auto b = recompute.run(ragged_sources());
  EXPECT_EQ(a.outputs, b.outputs);
}

// --- Packed-step accounting and the modeled win -------------------------------

TEST(SchedulerStats, PackedRowsAccounting) {
  Rng rng(111);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Scheduler sched(weights, calib_sources(),
                  base_config(ServeBackend::kAccelerator, 1, 8));
  const ScheduleReport rep = sched.run(ragged_sources());

  ASSERT_EQ(rep.per_card_steps.size(), 1u);
  const CardStepStats& s = rep.per_card_steps[0];
  EXPECT_EQ(s.sentences, 8);
  EXPECT_GT(s.steps, 0l);
  // Eight sentences into eight slots: early steps pack all of them.
  EXPECT_GT(rep.packed_rows_mean(), 1.0);
  EXPECT_LE(rep.packed_rows_mean(), 8.0);
  // Histogram sums back to the step and row totals.
  long hist_steps = 0, hist_rows = 0;
  for (std::size_t k = 0; k < s.rows_hist.size(); ++k) {
    hist_steps += s.rows_hist[k];
    hist_rows += s.rows_hist[k] * static_cast<long>(k);
  }
  EXPECT_EQ(hist_steps, s.steps);
  EXPECT_EQ(hist_rows, s.packed_rows);
  EXPECT_GT(s.rows_hist[8], 0l);  // the full-pack bucket was hit
}

// The acceptance criterion: at batch >= 8, packed multi-row steps beat the
// one-row-per-step mode in modeled sentences/sec AND SA utilization.
TEST(SchedulerStats, PackingBeatsOneRowStepsModeled) {
  SyntheticTranslationTask task(24, 5, 8);
  Rng rng(112);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), task.vocab_size(), rng);
  Rng src_rng(7);
  std::vector<TokenSeq> sources;
  for (int i = 0; i < 8; ++i) sources.push_back(task.sample(src_rng).source);

  Scheduler one_row(weights, calib_sources(),
                    base_config(ServeBackend::kAccelerator, 1, 1));
  Scheduler packed(weights, calib_sources(),
                   base_config(ServeBackend::kAccelerator, 1, 8));
  const ScheduleReport rep1 = one_row.run(sources);
  const ScheduleReport rep8 = packed.run(sources);

  // Same sentences, same outputs, fewer+fuller SA invocations.
  EXPECT_EQ(rep1.outputs, rep8.outputs);
  EXPECT_EQ(rep1.packed_rows_mean(), 1.0);
  EXPECT_GT(rep8.packed_rows_mean(), 2.0);
  EXPECT_LT(rep8.makespan_cycles(), rep1.makespan_cycles());
  EXPECT_GT(rep8.modeled_sentences_per_second(),
            rep1.modeled_sentences_per_second());
  EXPECT_GT(rep8.sa_utilization(), rep1.sa_utilization());
}

// Request placement follows the simulated-time admission gate (least-loaded
// card takes the next request, ties to the lower id), so repeated runs
// reproduce outputs AND every per-card cycle ledger exactly — even with
// multiple racing host threads.
TEST(SchedulerStats, RunsAreReproducibleIncludingPerCardLedgers) {
  Rng rng(113);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  for (const int cards : {1, 3}) {
    Scheduler sched(weights, calib_sources(),
                    base_config(ServeBackend::kAccelerator, cards, 4));
    const ScheduleReport a = sched.run(ragged_sources());
    const ScheduleReport b = sched.run(ragged_sources());
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.makespan_cycles(), b.makespan_cycles()) << cards << " cards";
    EXPECT_EQ(a.total_cycles(), b.total_cycles()) << cards << " cards";
    ASSERT_EQ(a.per_card.size(), b.per_card.size());
    for (std::size_t c = 0; c < a.per_card.size(); ++c) {
      EXPECT_EQ(a.per_card[c].total_cycles(), b.per_card[c].total_cycles())
          << "card " << c << " of " << cards;
      EXPECT_EQ(a.per_card_steps[c].packed_rows,
                b.per_card_steps[c].packed_rows)
          << "card " << c << " of " << cards;
    }
  }
}

// More cards shrink the modeled makespan: the admission gate hands each
// request to the card with the smallest virtual clock, so a farm twice the
// size finishes the same queue in about half the busiest-card cycles.
TEST(SchedulerStats, ModeledThroughputScalesWithCards) {
  SyntheticTranslationTask task(24, 5, 8);
  Rng rng(114);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), task.vocab_size(), rng);
  Rng src_rng(9);
  std::vector<TokenSeq> sources;
  for (int i = 0; i < 16; ++i) sources.push_back(task.sample(src_rng).source);

  double prev = 0.0;
  for (const int cards : {1, 2, 4}) {
    Scheduler sched(weights, calib_sources(),
                    base_config(ServeBackend::kAccelerator, cards, 1));
    const ScheduleReport rep = sched.run(sources);
    EXPECT_GT(rep.modeled_sentences_per_second(), prev) << cards << " cards";
    prev = rep.modeled_sentences_per_second();
  }
}

// Zero executed steps (no sources at all) must yield well-defined zeros in
// every derived ratio — no division by zero anywhere in the report or the
// bench JSON inputs built from it.
TEST(SchedulerStats, EmptyRunYieldsZerosNotDivisionsByZero) {
  Rng rng(115);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Scheduler sched(weights, calib_sources(),
                  base_config(ServeBackend::kAccelerator, 2, 4));
  const ScheduleReport rep = sched.run({});
  EXPECT_EQ(rep.sentences(), 0);
  EXPECT_EQ(rep.packed_steps(), 0);
  EXPECT_EQ(rep.makespan_cycles(), 0);
  EXPECT_EQ(rep.packed_rows_mean(), 0.0);
  EXPECT_EQ(rep.sa_utilization(), 0.0);
  EXPECT_EQ(rep.modeled_sentences_per_second(), 0.0);
  EXPECT_EQ(rep.sa_busy_cycles(), 0);
  EXPECT_EQ(rep.softmax_busy_cycles(), 0);
  EXPECT_EQ(rep.layernorm_busy_cycles(), 0);
  EXPECT_EQ(rep.softmax_stall_cycles(), 0);
  // A default-constructed report (what a bench sees before any sweep point)
  // is equally safe.
  const ScheduleReport empty;
  EXPECT_EQ(empty.packed_rows_mean(), 0.0);
  EXPECT_EQ(empty.sa_utilization(), 0.0);
  EXPECT_EQ(empty.modeled_sentences_per_second(), 0.0);
}

// The PR 4 interleaved schedule: same sentences, same outputs, strictly
// fewer simulated cycles and less SA time lost to softmax waits than the
// strict program-order schedule it replaces (ablation knob).
TEST(SchedulerStats, InterleavingBeatsProgramOrderSchedule) {
  SyntheticTranslationTask task(24, 5, 8);
  Rng rng(116);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), task.vocab_size(), rng);
  Rng src_rng(10);
  std::vector<TokenSeq> sources;
  for (int i = 0; i < 12; ++i) sources.push_back(task.sample(src_rng).source);

  SchedulerConfig interleaved = base_config(ServeBackend::kAccelerator, 1, 8);
  SchedulerConfig program = interleaved;
  program.accel.interleave_decode = false;
  Scheduler a(weights, calib_sources(), interleaved);
  Scheduler b(weights, calib_sources(), program);
  const ScheduleReport ra = a.run(sources);
  const ScheduleReport rb = b.run(sources);
  EXPECT_EQ(ra.outputs, rb.outputs);  // timing model only, data untouched
  EXPECT_LT(ra.makespan_cycles(), rb.makespan_cycles());
  EXPECT_GT(ra.sa_utilization(), rb.sa_utilization());
  EXPECT_LT(ra.softmax_stall_cycles(), rb.softmax_stall_cycles());
}

}  // namespace
}  // namespace tfacc
