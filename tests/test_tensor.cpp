// Unit tests for src/tensor: matrices, GEMM kernels, structure ops, metrics.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "tensor/compare.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

TEST(Matrix, ConstructsZeroed) {
  MatF m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
}

TEST(Matrix, InitializerList) {
  MatF m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m(2, 1), 6.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((MatF{{1, 2}, {3}}), CheckError);
}

TEST(Matrix, AtBoundsChecked) {
  MatF m(2, 2);
  EXPECT_THROW(m.at(2, 0), CheckError);
  EXPECT_THROW(m.at(0, -1), CheckError);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, BlockAndSetBlock) {
  MatF m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const MatF b = m.block(1, 1, 2, 2);
  EXPECT_EQ(b(0, 0), 5.0f);
  EXPECT_EQ(b(1, 1), 9.0f);
  MatF dst(3, 3);
  dst.set_block(1, 1, b);
  EXPECT_EQ(dst(2, 2), 9.0f);
  EXPECT_EQ(dst(0, 0), 0.0f);
  EXPECT_THROW(m.block(2, 2, 2, 2), CheckError);
}

TEST(Gemm, MatchesHandComputed) {
  const MatF a{{1, 2}, {3, 4}};
  const MatF b{{5, 6}, {7, 8}};
  const MatF c = gemm(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19);
  EXPECT_FLOAT_EQ(c(0, 1), 22);
  EXPECT_FLOAT_EQ(c(1, 0), 43);
  EXPECT_FLOAT_EQ(c(1, 1), 50);
}

TEST(Gemm, ShapeMismatchThrows) {
  EXPECT_THROW(gemm(MatF(2, 3), MatF(2, 3)), CheckError);
  EXPECT_THROW(gemm_i8(MatI8(2, 3), MatI8(4, 3)), CheckError);
}

TEST(Gemm, NtAndTnAgreeWithExplicitTranspose) {
  Rng rng(3);
  MatF a(5, 7), b(4, 7), c(5, 9);
  fill_normal(a, rng, 0, 1);
  fill_normal(b, rng, 0, 1);
  fill_normal(c, rng, 0, 1);
  EXPECT_LT(max_abs_diff(gemm_nt(a, b), gemm(a, transpose(b))), 1e-5);
  EXPECT_LT(max_abs_diff(gemm_tn(a, c), gemm(transpose(a), c)), 1e-5);
}

TEST(GemmI8, MatchesFloatGemmOnSmallValues) {
  Rng rng(11);
  MatI8 a(6, 10), b(10, 5);
  fill_uniform_i8(a, rng, -20, 20);
  fill_uniform_i8(b, rng, -20, 20);
  const MatI32 c = gemm_i8(a, b);
  const MatF cf = gemm(to_float(a), to_float(b));
  for (int r = 0; r < c.rows(); ++r)
    for (int col = 0; col < c.cols(); ++col)
      EXPECT_EQ(static_cast<float>(c(r, col)), cf(r, col));
}

TEST(GemmI8, NtMatchesTransposed) {
  Rng rng(12);
  MatI8 a(4, 8), b(6, 8);
  fill_uniform_i8(a, rng);
  fill_uniform_i8(b, rng);
  EXPECT_EQ(gemm_nt_i8(a, b), gemm_i8(a, transpose(b)));
}

TEST(Structure, HconcatAndSplitColsRoundTrip) {
  Rng rng(5);
  MatI8 m(7, 12);
  fill_uniform_i8(m, rng);
  const auto blocks = split_cols(m, 4);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(hconcat(blocks), m);
}

TEST(Structure, SplitColsRejectsNonDivisible) {
  EXPECT_THROW(split_cols(MatI8(2, 10), 3), CheckError);
}

TEST(Elementwise, AddBiasAndRelu) {
  const MatF a{{-1, 2}, {3, -4}};
  const MatF biased = add_bias(a, {10, 20});
  EXPECT_FLOAT_EQ(biased(1, 1), 16);
  const MatF r = relu(a);
  EXPECT_FLOAT_EQ(r(0, 0), 0);
  EXPECT_FLOAT_EQ(r(1, 0), 3);
  const MatI32 ri = relu_i32(MatI32{{-5, 5}, {0, -1}});
  EXPECT_EQ(ri(0, 0), 0);
  EXPECT_EQ(ri(0, 1), 5);
}

TEST(Elementwise, ColSumsAndAccumulate) {
  const MatF a{{1, 2}, {3, 4}};
  const auto cs = col_sums(a);
  EXPECT_FLOAT_EQ(cs[0], 4);
  EXPECT_FLOAT_EQ(cs[1], 6);
  MatF dst{{1, 1}, {1, 1}};
  accumulate(dst, a);
  EXPECT_FLOAT_EQ(dst(1, 1), 5);
}

TEST(Compare, MetricsBehave) {
  const MatF a{{1, 0}, {0, 1}};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, a), 1.0);
  const MatF b{{0, 1}, {1, 0}};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
  EXPECT_DOUBLE_EQ(mse(a, b), 1.0);
  const MatF z(2, 2);
  EXPECT_DOUBLE_EQ(cosine_similarity(z, z), 1.0);
}

// Property sweep: GEMM distributes over column-partitioned weights —
// the algebra behind the Section III matrix partitioning.
class PartitionAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(PartitionAlgebra, BlockwiseGemmEqualsFullGemm) {
  const int block = GetParam();
  Rng rng(100 + block);
  MatI8 x(9, 24), w(24, 16);
  fill_uniform_i8(x, rng);
  fill_uniform_i8(w, rng);
  const MatI32 full = gemm_i8(x, w);
  std::vector<MatI32> parts;
  for (const auto& wb : split_cols(w, block)) parts.push_back(gemm_i8(x, wb));
  EXPECT_EQ(hconcat(parts), full);
}

INSTANTIATE_TEST_SUITE_P(Blocks, PartitionAlgebra,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace tfacc
