// Tests for the simulation kernel: timeline semantics and the clocked
// (PE-level) systolic array, including the closed-form latency property.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "sim/systolic_rtl.hpp"
#include "sim/timeline.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

TEST(Timeline, ReservationsAreSequentialPerModule) {
  Timeline tl;
  auto& m = tl.module("SA");
  const Interval a = m.reserve(0, 10, "a");
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(a.end, 10);
  const Interval b = m.reserve(5, 7, "b");  // cannot start before a ends
  EXPECT_EQ(b.start, 10);
  EXPECT_EQ(b.end, 17);
  const Interval c = m.reserve(30, 2, "c");  // idle gap allowed
  EXPECT_EQ(c.start, 30);
  EXPECT_EQ(m.busy_cycles(), 19);
  EXPECT_EQ(m.end_time(), 32);
}

TEST(Timeline, ModulesAreIndependent) {
  Timeline tl;
  tl.module("SA").reserve(0, 100, "op");
  const Interval s = tl.module("Softmax").reserve(10, 5, "sm");
  EXPECT_EQ(s.start, 10);
  EXPECT_EQ(tl.end_time(), 100);
}

TEST(Timeline, CsvContainsAllIntervals) {
  Timeline tl;
  tl.module("SA").reserve(0, 4, "x");
  tl.module("LayerNorm").reserve(4, 2, "y");
  std::ostringstream os;
  tl.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("module,start,end,label"), std::string::npos);
  EXPECT_NE(csv.find("SA,0,4,x"), std::string::npos);
  EXPECT_NE(csv.find("LayerNorm,4,6,y"), std::string::npos);
}

TEST(Timeline, NegativeDurationRejected) {
  Timeline tl;
  EXPECT_THROW(tl.module("SA").reserve(0, -1, "bad"), CheckError);
}

TEST(SystolicRtl, RejectsOversizedOperands) {
  SystolicArrayRtl sa(4, 4);
  EXPECT_THROW(sa.run(MatI8(5, 3), MatI8(3, 2)), CheckError);
  EXPECT_THROW(sa.run(MatI8(2, 3), MatI8(3, 5)), CheckError);
  EXPECT_THROW(sa.run(MatI8(2, 3), MatI8(4, 2)), CheckError);
}

TEST(SystolicRtl, TinyHandComputedCase) {
  SystolicArrayRtl sa(2, 2);
  const MatI8 a{{1, 2}, {3, 4}};
  const MatI8 b{{5, 6}, {7, 8}};
  const auto res = sa.run(a, b);
  EXPECT_EQ(res.out, (MatI32{{19, 22}, {43, 50}}));
  EXPECT_EQ(res.cycles, SystolicArrayRtl::expected_cycles(2, 2, 2));
}

// Property sweep: for random (R, K, C) the clocked array must be bit-exact
// against the plain GEMM and hit the closed-form latency K + R + C - 1 —
// this grounds the transaction-level timing model of src/core.
class SystolicSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SystolicSweep, BitExactAndOnTime) {
  const auto [r, k, c] = GetParam();
  Rng rng(r * 10007 + k * 101 + c);
  MatI8 a(r, k), b(k, c);
  fill_uniform_i8(a, rng);
  fill_uniform_i8(b, rng);
  SystolicArrayRtl sa(64, 64);
  const auto res = sa.run(a, b);
  EXPECT_EQ(res.out, gemm_i8(a, b));
  EXPECT_EQ(res.cycles, SystolicArrayRtl::expected_cycles(r, k, c));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SystolicSweep,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 64, 1},
                      std::tuple{7, 3, 5}, std::tuple{16, 16, 16},
                      std::tuple{64, 64, 64}, std::tuple{64, 128, 64},
                      std::tuple{5, 200, 9}, std::tuple{33, 64, 17},
                      std::tuple{64, 512, 64}, std::tuple{13, 1, 64}));

TEST(SystolicRtl, ColumnByColumnDrainMatchesPaperDescription) {
  // "output the product matrix column by column, so each column has s
  // elements": the latency grows exactly one cycle per extra output column.
  SystolicArrayRtl sa(8, 8);
  Rng rng(5);
  MatI8 a(8, 16);
  fill_uniform_i8(a, rng);
  Cycle prev = 0;
  for (int c = 1; c <= 8; ++c) {
    MatI8 b(16, c);
    fill_uniform_i8(b, rng);
    const auto res = sa.run(a, b);
    if (c > 1) {
      EXPECT_EQ(res.cycles, prev + 1);
    }
    prev = res.cycles;
  }
}

}  // namespace
}  // namespace tfacc
