// Cross-module integration tests: a full encoder layer through the
// accelerator vs the FP32 reference, and an end-to-end train → quantize →
// accelerate pipeline on the synthetic task.
#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "nlp/bleu.hpp"
#include "nlp/synthetic.hpp"
#include "perf/resource_model.hpp"
#include "quant/qtransformer.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace tfacc {
namespace {

ModelConfig hw_tiny() {
  ModelConfig cfg;
  cfg.name = "hw-tiny";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;
  return cfg;
}

TEST(Integration, EncoderLayerOnAcceleratorTracksReference) {
  // MHA + FFN chained through the accelerator, compared against the pure
  // FP32 functional path.
  const ModelConfig cfg = hw_tiny();
  Rng rng(1);
  const EncoderLayerWeights layer = EncoderLayerWeights::random(cfg, rng);
  const int s = 20;
  const Mask mask = no_mask(s, s);

  std::vector<MatF> xs;
  MhaQuantized::Calibration mha_calib;
  std::vector<MatF> ffn_calib;
  for (int i = 0; i < 3; ++i) {
    MatF x(s, cfg.d_model);
    fill_normal(x, rng, 0, 1);
    mha_calib.q.push_back(x);
    mha_calib.kv.push_back(x);
    mha_calib.mask.push_back(mask);
    ffn_calib.push_back(mha_resblock(x, x, layer.mha, mask));
    xs.push_back(x);
  }
  const auto qm =
      MhaQuantized::build(layer.mha, mha_calib, SoftmaxImpl::kHardware);
  const auto qf = FfnQuantized::build(layer.ffn, ffn_calib);

  MatF x(s, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const MatF ref = ffn_resblock(mha_resblock(x, x, layer.mha, mask), layer.ffn);

  Accelerator acc;
  const auto mha_out = acc.run_mha(qm, qm.quantize_q(x), qm.quantize_kv(x),
                                   mask);
  const MatF mha_f = qm.dequantize_out(mha_out.out);
  const auto ffn_out = acc.run_ffn(qf, qf.quantize_in(mha_f));
  const MatF got = qf.dequantize_out(ffn_out.out);

  EXPECT_GT(cosine_similarity(ref, got), 0.985);
  EXPECT_GT(mha_out.report.total_cycles, 0);
  EXPECT_GT(ffn_out.report.total_cycles, 0);
}

TEST(Integration, TrainQuantizeAccelerateRoundTrip) {
  // Miniature Section V.A pipeline: train briefly on the synthetic task,
  // quantize, run greedy decode on the accelerator backend, and require the
  // INT8 translations to track the FP32 translations.
  const SyntheticTranslationTask task(10, 3, 6);
  Rng rng(2);
  Trainer trainer(TransformerWeights::random(hw_tiny(), task.vocab_size(),
                                             rng));
  const auto train_set = task.corpus(48, rng);
  for (int epoch = 0; epoch < 10; ++epoch)
    for (std::size_t i = 0; i < train_set.size(); i += 8)
      trainer.train_batch(std::vector<SentencePair>(
          train_set.begin() + i,
          train_set.begin() + std::min(i + 8, train_set.size())));

  Transformer model(trainer.take_weights());
  const auto eval_set = task.corpus(10, rng);

  std::vector<TokenSeq> calib_sources;
  for (int i = 0; i < 4; ++i) calib_sources.push_back(train_set[i].source);
  const auto qt = QuantizedTransformer::build(
      model, calib_sources, task.max_len() + 2, SoftmaxImpl::kHardware);

  Accelerator acc;
  AcceleratorStats stats;

  std::vector<TokenSeq> fp32_out, int8_out;
  for (const auto& pair : eval_set) {
    fp32_out.push_back(model.translate_greedy(pair.source,
                                              task.max_len() + 2));
    model.set_backend(accelerator_backend(qt, acc, &stats));
    int8_out.push_back(model.translate_greedy(pair.source,
                                              task.max_len() + 2));
    model.set_backend(ResBlockBackend{});
  }
  // INT8-on-accelerator decodes must stay close to FP32 decodes.
  const double agreement = corpus_bleu(int8_out, fp32_out, 2, /*smooth=*/true);
  EXPECT_GT(agreement, 60.0) << "INT8 vs FP32 decode divergence";
  EXPECT_GT(stats.mha_runs, 0);
  EXPECT_GT(stats.total_cycles(), 0);
}

TEST(Integration, ResourceAndLatencyModelsAgreeOnUtilization) {
  // The power model consumes the simulator's utilization: wire them together
  // the way the Table II/III benches do.
  Accelerator acc;
  const RunReport rep = acc.time_mha(64, 64, 512, 8);
  const ResourceModel resources;
  const double watts =
      resources.total_power_w(64, 64, rep.clock_mhz, rep.sa_mac_utilization());
  EXPECT_GT(watts, 10.0);
  EXPECT_LT(watts, 25.0);
}

}  // namespace
}  // namespace tfacc
