// Cross-configuration property sweeps: accelerator timing invariants over
// every Table I model and a range of sequence lengths, conservation
// identities of the cycle accounting, exhaustive-range checks of the
// hardware arithmetic, and randomized differential tests between the
// clocked systolic array and the quantized GEMM.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/accelerator.hpp"
#include "hwarith/exp_ln.hpp"
#include "perf/analysis.hpp"
#include "sim/systolic_rtl.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

// ---------------------------------------------------------------------------
// Accelerator invariants over (model, s)
// ---------------------------------------------------------------------------

class AcceleratorSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
// param: (model index into table1, sequence length)

TEST_P(AcceleratorSweep, TimingInvariantsHold) {
  const auto [model_idx, s] = GetParam();
  const ModelConfig cfg =
      ModelConfig::table1()[static_cast<std::size_t>(model_idx)];
  Accelerator acc;
  const RunReport mha = acc.time_mha(s, s, cfg.d_model, cfg.num_heads);
  const RunReport ffn = acc.time_ffn(s, cfg.d_model, cfg.d_ff);

  for (const RunReport* rep : {&mha, &ffn}) {
    // Busy time never exceeds the makespan; stream never exceeds busy.
    EXPECT_LE(rep->sa_busy, rep->total_cycles);
    EXPECT_LE(rep->sa_stream, rep->sa_busy);
    EXPECT_GE(rep->exposed_weight_load, 0);
    EXPECT_GE(rep->accum_spill, 0);
    // The LayerNorm tail is on the critical path: makespan = LN end.
    EXPECT_EQ(rep->total_cycles, rep->timeline.end_time());
  }
  // Softmax must be hidden for every Table I model at these lengths.
  EXPECT_TRUE(mha.softmax_hidden)
      << cfg.name << " s=" << s << " slack " << mha.softmax_slack_min;

  // Streaming cycles vs total MACs / PE count: equal at s = 64 (full column
  // occupancy); for other s the Q·Kᵀ / Attn·V ops occupy only s of the 64
  // columns, so streamed cycles can only exceed the MAC-perfect bound.
  const std::int64_t pe = 64 * 64;
  const Cycle mha_ideal = static_cast<Cycle>(
      mha_macs(s, cfg.d_model, cfg.num_heads).total() / pe);
  const Cycle ffn_ideal =
      static_cast<Cycle>(ffn_macs(s, cfg.d_model, cfg.d_ff) / pe);
  if (s == 64) {
    EXPECT_EQ(mha.sa_stream, mha_ideal);
    EXPECT_EQ(ffn.sa_stream, ffn_ideal);
  } else {
    EXPECT_GE(mha.sa_stream, mha_ideal);
    EXPECT_GE(ffn.sa_stream, ffn_ideal);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndLengths, AcceleratorSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(16, 64, 128)));

TEST(AcceleratorConservation, BusyPlusIdleEqualsTotal) {
  Accelerator acc;
  const RunReport rep = acc.time_mha(64, 64, 512, 8);
  // Idle decomposition: exposed weight loads + the LayerNorm tail (the SA
  // has nothing scheduled after the last G op) account for all idle cycles.
  const Cycle idle = rep.total_cycles - rep.sa_busy;
  EXPECT_EQ(idle, rep.exposed_weight_load + rep.layernorm_busy);
}

TEST(AcceleratorConservation, FfnIdleIsLoadPlusLnOnly) {
  Accelerator acc;
  const RunReport rep = acc.time_ffn(64, 512, 2048);
  const Cycle idle = rep.total_cycles - rep.sa_busy;
  EXPECT_EQ(idle, rep.exposed_weight_load + rep.layernorm_busy);
}

// ---------------------------------------------------------------------------
// Hardware arithmetic: exhaustive and boundary coverage
// ---------------------------------------------------------------------------

TEST(ExpUnitExhaustive, MonotoneAndBoundedOverFullDomain) {
  // Every representable Q.10 input in [-16, 0]: output must be monotone
  // non-decreasing, within [0, 1.0], and within 1.3% + 2 LSB of exp(x).
  std::int32_t prev = -1;
  for (std::int32_t x = hw::kExpMinArg; x <= 0; ++x) {
    const std::int32_t y = hw::exp_unit_q10(x);
    ASSERT_GE(y, prev) << x;
    ASSERT_GE(y, 0) << x;
    ASSERT_LE(y, hw::kSoftmaxOne) << x;
    const double ref = std::exp(static_cast<double>(x) / 1024.0) * 1024.0;
    ASSERT_NEAR(static_cast<double>(y), ref, ref * 0.013 + 2.0) << x;
    prev = y;
  }
}

TEST(LnUnitExhaustive, NearMonotoneOverThreeDecades) {
  // The dyadic PWL slopes can overshoot just before a segment boundary and
  // snap back to the exact anchor at the boundary: local dips of a few LSBs
  // are a real property of the shipped (and the paper's) design. Assert
  // near-monotonicity with a tight dip bound, plus global accuracy.
  std::int64_t prev = -(std::int64_t{1} << 40);
  for (std::int64_t v = hw::kSoftmaxOne; v < (1 << 20); v += 7) {
    const std::int64_t y = hw::ln_unit_q10(v);
    ASSERT_GE(y, prev - 8) << v;
    const double ref = std::log(static_cast<double>(v) / 1024.0) * 1024.0;
    ASSERT_NEAR(static_cast<double>(y), ref, 0.013 * std::abs(ref) + 8.0)
        << v;
    prev = std::max(prev, y);
  }
}

TEST(ExpLnRoundTrip, LnOfExpIsNearIdentity) {
  // exp then ln (through the shift-add units) must come back within the
  // combined approximation budget — the property the log-sum-exp softmax
  // relies on.
  for (double x : {-0.5, -1.0, -2.0, -3.0, -4.0}) {
    const double y = hw::exp_unit(x);      // in (0, 1)
    const double back = -hw::ln_unit(1.0 / y);
    EXPECT_NEAR(back, x, 0.08) << x;
  }
}

// ---------------------------------------------------------------------------
// Differential: clocked SA vs quantized GEMM on random shapes
// ---------------------------------------------------------------------------

TEST(SystolicDifferential, RandomShapesBitExact) {
  Rng rng(99);
  SystolicArrayRtl sa(64, 64);
  for (int trial = 0; trial < 25; ++trial) {
    const int r = rng.uniform_int(1, 64);
    const int k = rng.uniform_int(1, 96);
    const int c = rng.uniform_int(1, 64);
    MatI8 a(r, k), b(k, c);
    fill_uniform_i8(a, rng);
    fill_uniform_i8(b, rng);
    const auto res = sa.run(a, b);
    ASSERT_EQ(res.out, gemm_i8(a, b)) << r << 'x' << k << 'x' << c;
    ASSERT_EQ(res.cycles, SystolicArrayRtl::expected_cycles(r, k, c));
  }
}

// ---------------------------------------------------------------------------
// Cycle model sanity across micro-architecture knobs
// ---------------------------------------------------------------------------

class DrainSweep : public ::testing::TestWithParam<int> {};

TEST_P(DrainSweep, CyclesMonotoneInDrainBubble) {
  AcceleratorConfig cfg;
  cfg.tile_drain_cycles = GetParam();
  AcceleratorConfig base;
  base.tile_drain_cycles = 0;
  const Cycle with_drain =
      Accelerator(cfg).time_mha(64, 64, 512, 8).total_cycles;
  const Cycle without =
      Accelerator(base).time_mha(64, 64, 512, 8).total_cycles;
  EXPECT_GE(with_drain, without);
  // Each of the 272 tiles pays the bubble when it exceeds the load bound.
  if (GetParam() > 0) {
    EXPECT_GT(with_drain, without);
  }
}

INSTANTIATE_TEST_SUITE_P(Drains, DrainSweep, ::testing::Values(1, 4, 8, 16));

TEST(ClockScaling, MicrosecondsInverselyProportional) {
  AcceleratorConfig cfg;
  cfg.clock_mhz = 100.0;
  const double us100 =
      Accelerator(cfg).time_mha(64, 64, 512, 8).microseconds();
  cfg.clock_mhz = 400.0;
  const double us400 =
      Accelerator(cfg).time_mha(64, 64, 512, 8).microseconds();
  EXPECT_NEAR(us100 / us400, 4.0, 1e-9);
}

TEST(SequenceChunking, S65CostsLikeTwoRowChunks) {
  // One row over the 64-row array forces a second chunk on every op.
  Accelerator acc;
  const Cycle s64 = acc.time_ffn(64, 512, 2048).total_cycles;
  const Cycle s65 = acc.time_ffn(65, 512, 2048).total_cycles;
  const Cycle s128 = acc.time_ffn(128, 512, 2048).total_cycles;
  EXPECT_GT(s65, s64 + (s64 / 2));  // far more than one row's worth
  EXPECT_LE(s65, s128);
}

}  // namespace
}  // namespace tfacc
