// Unit tests for src/common: checks, fixed point, configuration presets.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/config.hpp"
#include "common/fixed_point.hpp"
#include "common/random.hpp"

namespace tfacc {
namespace {

TEST(Check, ThrowsWithLocation) {
  try {
    TFACC_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(Check, ArgCheckThrows) {
  EXPECT_THROW(TFACC_CHECK_ARG(false), CheckError);
  EXPECT_NO_THROW(TFACC_CHECK_ARG(true));
}

TEST(Saturate, Int8Bounds) {
  EXPECT_EQ(saturate_i8(127), 127);
  EXPECT_EQ(saturate_i8(128), 127);
  EXPECT_EQ(saturate_i8(-128), -128);
  EXPECT_EQ(saturate_i8(-129), -128);
  EXPECT_EQ(saturate_i8(0), 0);
  EXPECT_EQ(saturate_i8(1'000'000), 127);
  EXPECT_EQ(saturate_i8(-1'000'000), -128);
}

TEST(Saturate, Int16Bounds) {
  EXPECT_EQ(saturate_i16(32767), 32767);
  EXPECT_EQ(saturate_i16(32768), 32767);
  EXPECT_EQ(saturate_i16(-32769), -32768);
}

TEST(RoundingShift, RoundsHalfAwayFromZero) {
  EXPECT_EQ(rounding_shift_right(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(rounding_shift_right(-5, 1), -3);  // -2.5 -> -3
  EXPECT_EQ(rounding_shift_right(4, 1), 2);
  EXPECT_EQ(rounding_shift_right(-4, 1), -2);
  EXPECT_EQ(rounding_shift_right(7, 2), 2);    // 1.75 -> 2
  EXPECT_EQ(rounding_shift_right(100, 0), 100);
}

TEST(RoundingShift, NegativeShiftIsLeftShift) {
  EXPECT_EQ(rounding_shift_right(3, -2), 12);
}

TEST(FixedPointScale, RoundTripsRealScales) {
  for (double s : {1.0, 0.5, 0.037, 3.25, 1e-4, 127.0, 1e-9}) {
    const auto fps = FixedPointScale::from_double(s);
    EXPECT_NEAR(fps.to_double(), s, s * 1e-4) << "scale " << s;
  }
}

TEST(FixedPointScale, ZeroScaleMapsEverythingToZero) {
  const auto fps = FixedPointScale::from_double(0.0);
  EXPECT_EQ(fps.apply(123456), 0);
  EXPECT_EQ(fps.apply_i8(-987), 0);
}

TEST(FixedPointScale, ApplyMatchesRealArithmetic) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double scale = std::exp(rng.uniform(-12.0, 3.0));
    const auto fps = FixedPointScale::from_double(scale);
    const std::int64_t v = rng.uniform_int(-2'000'000, 2'000'000);
    const double expected = static_cast<double>(v) * scale;
    const double got = static_cast<double>(fps.apply(v));
    // Mantissa has 15 bits: relative error bounded by ~2^-15 plus rounding.
    EXPECT_NEAR(got, expected, std::abs(expected) * 2e-4 + 0.51)
        << "v=" << v << " scale=" << scale;
  }
}

TEST(Fixed, ConvertsAndAdds) {
  using Q10 = Fixed<10>;
  const auto a = Q10::from_double(1.5);
  EXPECT_EQ(a.raw, 1536);
  EXPECT_DOUBLE_EQ(a.to_double(), 1.5);
  EXPECT_EQ((a + Q10::from_double(0.25)).raw, 1792);
  EXPECT_EQ((a - a).raw, 0);
}

TEST(ModelConfig, Table1PresetsSatisfyThePattern) {
  for (const auto& cfg : ModelConfig::table1()) {
    EXPECT_NO_THROW(cfg.validate()) << cfg.name;
    EXPECT_EQ(cfg.d_model, 64 * cfg.num_heads) << cfg.name;
    EXPECT_EQ(cfg.d_ff, 4 * cfg.d_model) << cfg.name;
    EXPECT_EQ(cfg.head_dim, 64) << cfg.name;
  }
}

TEST(ModelConfig, Table1Values) {
  const auto base = ModelConfig::transformer_base();
  EXPECT_EQ(base.d_model, 512);
  EXPECT_EQ(base.d_ff, 2048);
  EXPECT_EQ(base.num_heads, 8);
  const auto big = ModelConfig::transformer_big();
  EXPECT_EQ(big.d_model, 1024);
  EXPECT_EQ(big.num_heads, 16);
  const auto bb = ModelConfig::bert_base();
  EXPECT_EQ(bb.d_model, 768);
  EXPECT_EQ(bb.num_heads, 12);
  const auto bl = ModelConfig::bert_large();
  EXPECT_EQ(bl.d_model, 1024);
  EXPECT_EQ(bl.d_ff, 4096);
}

TEST(ModelConfig, ValidateRejectsBrokenPattern) {
  ModelConfig cfg = ModelConfig::transformer_base();
  cfg.d_ff = 1000;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = ModelConfig::transformer_base();
  cfg.num_heads = 7;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(ModelConfig, PartitionBlockCounts) {
  const auto base = ModelConfig::transformer_base();
  EXPECT_EQ(base.wg_blocks(), 8);    // h blocks of W_G (Fig. 4)
  EXPECT_EQ(base.w1_blocks(), 32);   // 4h blocks of W_1
  EXPECT_EQ(base.w2_blocks(), 8);    // h blocks of W_2
}

TEST(AcceleratorConfig, DefaultsValidate) {
  AcceleratorConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.sa_rows, 64);
  EXPECT_EQ(cfg.sa_cols, 64);
  EXPECT_DOUBLE_EQ(cfg.clock_mhz, 200.0);
}

TEST(AcceleratorConfig, RejectsNonPositive) {
  AcceleratorConfig cfg;
  cfg.sa_rows = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = {};
  cfg.clock_mhz = -1;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, RespectsIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace tfacc
