// Tests for BLEU and the synthetic translation task.
#include <gtest/gtest.h>

#include "nlp/bleu.hpp"
#include "nlp/synthetic.hpp"

namespace tfacc {
namespace {

TEST(Bleu, PerfectMatchIsHundred) {
  const std::vector<TokenSeq> c{{1, 2, 3, 4, 5}};
  EXPECT_DOUBLE_EQ(corpus_bleu(c, c), 100.0);
}

TEST(Bleu, EmptyOverlapIsZero) {
  EXPECT_DOUBLE_EQ(corpus_bleu({{1, 2, 3, 4}}, {{5, 6, 7, 8}}), 0.0);
}

TEST(Bleu, KnownHandComputedValue) {
  // hyp: [1 2 3 4], ref: [1 2 3 5]
  // p1 = 3/4, p2 = 2/3, p3 = 1/2, p4 = 0 → BLEU-4 = 0; BLEU-3:
  const double b3 = corpus_bleu({{1, 2, 3, 4}}, {{1, 2, 3, 5}}, 3);
  EXPECT_NEAR(b3, 100.0 * std::pow(0.75 * (2.0 / 3.0) * 0.5, 1.0 / 3.0), 1e-6);
  EXPECT_DOUBLE_EQ(corpus_bleu({{1, 2, 3, 4}}, {{1, 2, 3, 5}}, 4), 0.0);
}

TEST(Bleu, BrevityPenaltyAppliedWhenShort) {
  // hyp is a perfect prefix but half length: BP = exp(1 - 8/4).
  const std::vector<TokenSeq> hyp{{1, 2, 3, 4}};
  const std::vector<TokenSeq> ref{{1, 2, 3, 4, 5, 6, 7, 8}};
  const double b1 = corpus_bleu(hyp, ref, 1);
  EXPECT_NEAR(b1, 100.0 * std::exp(-1.0), 1e-6);
}

TEST(Bleu, NoPenaltyWhenLonger) {
  const std::vector<TokenSeq> hyp{{1, 2, 3, 4, 9, 9}};
  const std::vector<TokenSeq> ref{{1, 2, 3, 4}};
  EXPECT_NEAR(corpus_bleu(hyp, ref, 1), 100.0 * 4.0 / 6.0, 1e-6);
}

TEST(Bleu, ClippingCountsRepeats) {
  // "the the the" vs "the cat": unigram matches clipped to ref count 1.
  const double b = corpus_bleu({{7, 7, 7}}, {{7, 8}}, 1);
  EXPECT_NEAR(b, 100.0 * (1.0 / 3.0), 1e-6);
}

TEST(Bleu, CorpusAggregatesOverSentences) {
  const std::vector<TokenSeq> hyp{{1, 2}, {3, 4}};
  const std::vector<TokenSeq> ref{{1, 2}, {3, 5}};
  EXPECT_NEAR(corpus_bleu(hyp, ref, 1), 100.0 * 3.0 / 4.0, 1e-6);
}

TEST(Bleu, MismatchedSizesThrow) {
  EXPECT_THROW(corpus_bleu({{1}}, {{1}, {2}}), CheckError);
}

TEST(Bleu, SmoothedSentenceBleuNonZeroOnPartialMatch) {
  EXPECT_GT(sentence_bleu({1, 2, 9, 9}, {1, 2, 3, 4}), 0.0);
}

TEST(Synthetic, ReferenceTransformIsVerbSecond) {
  const SyntheticTranslationTask task(10, 4, 8);
  const TokenSeq src{3, 4, 5, 6};  // subj w w verb
  const TokenSeq ref = task.translate_reference(src);
  const int off = task.target_base() - task.source_base();
  EXPECT_EQ(ref, (TokenSeq{3 + off, 6 + off, 4 + off, 5 + off}));
}

TEST(Synthetic, SampleRespectsLengthAndVocab) {
  const SyntheticTranslationTask task(12, 4, 9);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto pair = task.sample(rng);
    EXPECT_GE(static_cast<int>(pair.source.size()), 4);
    EXPECT_LE(static_cast<int>(pair.source.size()), 9);
    EXPECT_EQ(pair.source.size(), pair.reference.size());
    for (int t : pair.source) {
      EXPECT_GE(t, task.source_base());
      EXPECT_LT(t, task.target_base());
    }
    for (int t : pair.reference) {
      EXPECT_GE(t, task.target_base());
      EXPECT_LT(t, task.vocab_size());
    }
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  const SyntheticTranslationTask task;
  Rng a(9), b(9);
  const auto ca = task.corpus(20, a);
  const auto cb = task.corpus(20, b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].source, cb[i].source);
    EXPECT_EQ(ca[i].reference, cb[i].reference);
  }
}

TEST(Synthetic, ReferenceTranslationScoresPerfectBleu) {
  const SyntheticTranslationTask task;
  Rng rng(2);
  std::vector<TokenSeq> hyps, refs;
  for (const auto& pair : task.corpus(50, rng)) {
    hyps.push_back(task.translate_reference(pair.source));
    refs.push_back(pair.reference);
  }
  EXPECT_DOUBLE_EQ(corpus_bleu(hyps, refs), 100.0);
}

}  // namespace
}  // namespace tfacc
