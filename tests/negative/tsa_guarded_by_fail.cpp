// Negative-compilation test: Clang's -Wthread-safety (with -Werror) MUST
// reject this file — it reads and writes a TFACC_GUARDED_BY member without
// holding the guarding mutex. Registered in ctest (Clang builds only) with
// WILL_FAIL, so CI proves the annotation wall actually stops an unguarded
// access rather than silently expanding to nothing.
//
// Keep this file free of heavy includes: it is compiled with
// -fsyntax-only straight from ctest, not through the normal build graph.
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment_unguarded() {
    // BUG (intentional): touches value_ without acquiring mu_. Under
    // -Wthread-safety this is "writing variable 'value_' requires holding
    // mutex 'mu_'", promoted to an error by -Werror.
    value_ = value_ + 1;
  }

  int read_guarded() {
    const tfacc::MutexLock lock(mu_);
    return value_;
  }

 private:
  tfacc::Mutex mu_;
  int value_ TFACC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.increment_unguarded();
  return c.read_guarded();
}
