// Negative-compilation test: Clang's -Wthread-safety (with -Werror) MUST
// reject this file — it calls a TFACC_REQUIRES(mu_) method without holding
// the capability (the scan_locked() pattern from serve/admission_gate.hpp:
// a _locked helper invoked lock-free is exactly the bug class this
// annotation exists to stop). Registered in ctest (Clang builds only) with
// WILL_FAIL.
//
// Keep this file free of heavy includes: it is compiled with
// -fsyntax-only straight from ctest, not through the normal build graph.
#include "common/thread_annotations.hpp"

namespace {

class Gate {
 public:
  void poke() {
    // BUG (intentional): scan_locked() requires mu_, which this caller
    // does not hold. Under -Wthread-safety this is "calling function
    // 'scan_locked' requires holding mutex 'mu_'", an error with -Werror.
    scan_locked();
  }

  void poke_correctly() {
    const tfacc::MutexLock lock(mu_);
    scan_locked();
  }

 private:
  void scan_locked() TFACC_REQUIRES(mu_) { ++scans_; }

  tfacc::Mutex mu_;
  int scans_ TFACC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Gate g;
  g.poke();
  g.poke_correctly();
  return 0;
}
