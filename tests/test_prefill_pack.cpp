// Chunked prefill packing suite (PR 6): admission no longer times the
// encoder pass eagerly — it is cut into fixed-size row chunks the serve step
// loop splices into the same per-card ledgers as the packed decode rows.
// Pinned here:
//  * chunk_prefill coverage math (row partition, one-time K/V projection on
//    the first MHA chunk, chunk_rows=1 and chunk-larger-than-sentence edges),
//  * legality (audit_schedule) of standalone chunk ledgers and mixed
//    prefill/decode lane ledgers across shapes × issue policies,
//  * the full-size-chunk ≡ schedule_mha degenerate pin,
//  * bit-identity of packed vs eager-encode Scheduler outputs on all three
//    backends (greedy and beam, burst and staggered arrivals),
//  * determinism of the simulated-time admission order under bursts
//    (per-card cycle ledgers reproduce exactly),
//  * the prefill-stall attribution (eager admission charges it, packing
//    shrinks it) and the prefill-only-queue guard (steps with zero decode
//    rows run prefill lanes without counting as packed steps),
//  * config validation of the new knobs and of Scheduler::run arrivals.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/verifier.hpp"
#include "common/check.hpp"
#include "core/backend.hpp"
#include "core/schedules.hpp"
#include "reference/weights.hpp"
#include "serve/scheduler.hpp"

namespace tfacc {
namespace {

// Hardware-compatible model (head_dim 64 = SA columns) shared by the
// quantized and accelerator backends; a narrower multi-head variant for the
// FP32 reference backend.
ModelConfig hw_config() {
  ModelConfig cfg;
  cfg.name = "prefill-hw";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 2;
  cfg.num_decoder_layers = 1;
  return cfg;
}

ModelConfig micro_config() {
  ModelConfig cfg;
  cfg.name = "prefill-micro";
  cfg.d_model = 32;
  cfg.d_ff = 128;
  cfg.num_heads = 2;
  cfg.head_dim = 16;
  cfg.num_encoder_layers = 2;
  cfg.num_decoder_layers = 2;
  return cfg;
}

// Ragged source lengths so prefill chunk counts differ per sentence and
// sentences finish at different steps (slot churn under admission).
std::vector<TokenSeq> ragged_sources() {
  return {{3, 4, 5, 6},
          {7},
          {10, 3, 11, 4, 12, 5, 13},
          {5, 5, 6},
          {3, 4, 5, 6},
          {8, 9, kPadId, kPadId},
          {6, 7, 8, 9, 10, 11},
          {4}};
}

std::vector<TokenSeq> calib_sources() { return {{3, 4, 5}, {6, 7}}; }

SchedulerConfig serve_config(ServeBackend backend, int cards, int slots,
                             bool pack, int chunk_rows = 16) {
  SchedulerConfig cfg;
  cfg.backend = backend;
  cfg.num_cards = cards;
  cfg.slots_per_card = slots;
  cfg.max_len = 12;
  cfg.accel.pack_prefill = pack;
  cfg.accel.prefill_chunk_rows = chunk_rows;
  return cfg;
}

AcceleratorConfig accel_config(bool interleave = true) {
  AcceleratorConfig cfg;
  cfg.interleave_decode = interleave;
  return cfg;
}

// A sentence's full-size encoder plans: MHA + FFN per encoder layer.
std::vector<SublayerPlan> encoder_plans(int rows, int d_model, int num_heads,
                                        int d_ff, int layers) {
  std::vector<SublayerPlan> subs;
  for (int l = 0; l < layers; ++l) {
    subs.push_back(SublayerPlan::mha_prefill("enc" + std::to_string(2 * l),
                                             rows, rows, d_model, num_heads,
                                             rows));
    subs.push_back(SublayerPlan::ffn("enc" + std::to_string(2 * l + 1), rows,
                                     d_model, d_ff));
  }
  return subs;
}

// --- chunk_prefill coverage math ---------------------------------------------

TEST(ChunkPrefill, PartitionsRowsAndProjectsKvOnce) {
  for (const int rows : {1, 5, 16, 17, 33})
    for (const int chunk_rows : {1, 4, 16, 64}) {
      const auto chunks =
          chunk_prefill(encoder_plans(rows, 512, 8, 2048, 2), chunk_rows);
      int mha_rows = 0, ffn_rows = 0, projections = 0;
      for (const SublayerPlan& c : chunks) {
        if (c.kind == SublayerPlan::Kind::kMhaPrefill) {
          EXPECT_LE(c.s_q, chunk_rows);
          EXPECT_EQ(c.s_kv, rows);  // every chunk attends over ALL rows
          mha_rows += c.s_q;
          if (c.project_kv_rows > 0) {
            EXPECT_EQ(c.project_kv_rows, rows);  // one-time, whole sentence
            ++projections;
          }
        } else {
          ASSERT_EQ(c.kind, SublayerPlan::Kind::kFfn);
          EXPECT_LE(c.rows, chunk_rows);
          ffn_rows += c.rows;
        }
      }
      EXPECT_EQ(mha_rows, 2 * rows) << rows << "/" << chunk_rows;
      EXPECT_EQ(ffn_rows, 2 * rows);
      EXPECT_EQ(projections, 2);  // exactly the first chunk of each MHA
    }
}

TEST(ChunkPrefill, ChunkLargerThanSentenceLeavesPlansWhole) {
  const auto plans = encoder_plans(7, 64, 1, 256, 1);
  const auto chunks = chunk_prefill(plans, 64);
  ASSERT_EQ(chunks.size(), plans.size());
  EXPECT_EQ(chunks[0].s_q, 7);
  EXPECT_EQ(chunks[0].project_kv_rows, 7);
  EXPECT_EQ(chunks[1].rows, 7);
}

TEST(ChunkPrefill, SingleRowChunksMaximizeInterleaving) {
  const auto chunks = chunk_prefill(encoder_plans(5, 64, 1, 256, 1), 1);
  ASSERT_EQ(chunks.size(), 10u);  // 5 MHA rows + 5 FFN rows
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(chunks[i].kind, SublayerPlan::Kind::kMhaPrefill);
  EXPECT_EQ(chunks[0].project_kv_rows, 5);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(chunks[i].project_kv_rows, 0);
}

TEST(ChunkPrefill, RejectsBadArguments) {
  const auto plans = encoder_plans(4, 64, 1, 256, 1);
  EXPECT_THROW(chunk_prefill(plans, 0), CheckError);
  // Decode-step kinds are not prefill work.
  EXPECT_THROW(
      chunk_prefill({SublayerPlan::mha_cached_batch("x", {3}, 64, 1, 1)}, 4),
      CheckError);
}

TEST(PrefillConfig, RejectsNonPositiveChunkRows) {
  AcceleratorConfig cfg;
  cfg.prefill_chunk_rows = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.prefill_chunk_rows = -3;
  EXPECT_THROW(cfg.validate(), CheckError);
}

// --- Legality of chunk and mixed-lane ledgers --------------------------------

TEST(PrefillAudit, StandaloneChunkLedgersAreLegalAcrossShapesAndPolicies) {
  for (const bool interleave : {true, false})
    for (const int rows : {1, 7, 16, 33})
      for (const int chunk_rows : {1, 5, 16, 64})
        for (const int heads : {1, 8}) {
          const auto chunks = chunk_prefill(
              encoder_plans(rows, heads * 64, heads, 4 * heads * 64, 1),
              chunk_rows);
          for (const SublayerPlan& chunk : chunks) {
            Timeline tl;
            const ScheduledRun run =
                schedule_prefill(accel_config(interleave), tl, chunk);
            VerifyOptions opts;
            opts.program_order = !interleave;
            const VerifyResult res = verify_schedule(run.graph, run.stats, opts);
            EXPECT_TRUE(res.ok())
                << "rows=" << rows << " chunk_rows=" << chunk_rows
                << " heads=" << heads
                << (interleave ? " greedy" : " program-order") << "\n"
                << res.to_string();
          }
        }
}

TEST(PrefillAudit, MixedPrefillDecodeLanesAreLegalAcrossShapesAndPolicies) {
  for (const bool interleave : {true, false})
    for (const int slots : {1, 8, 16})
      for (const int chunk_rows : {1, 6, 16}) {
        // One chunk lane per admitted sentence + the chained decode lane,
        // exactly the shape DecodeStepFuser::end_step composes.
        std::vector<FusedLane> lanes;
        const auto chunks =
            chunk_prefill(encoder_plans(13, 64, 1, 256, 1), chunk_rows);
        for (std::size_t i = 0; i < 2 && i < chunks.size(); ++i)
          lanes.push_back(FusedLane{{chunks[i]}, true});
        std::vector<int> totals;
        for (int r = 0; r < slots; ++r) totals.push_back(3 + (5 * r) % 11);
        lanes.push_back(FusedLane{
            {SublayerPlan::mha_cached_batch("dec.self", totals, 64, 1, slots),
             SublayerPlan::mha_cached_batch("dec.cross", totals, 64, 1, 0),
             SublayerPlan::ffn("dec.ffn", slots, 64, 256)},
            false});
        Timeline tl;
        const FusedRun fused =
            schedule_fused_lanes(accel_config(interleave), tl, lanes,
                                 interleave ? IssuePolicy::kGreedy
                                            : IssuePolicy::kProgramOrder);
        VerifyOptions opts;
        opts.program_order = !interleave;
        const VerifyResult res = verify_fused(fused, opts);
        EXPECT_TRUE(res.ok())
            << "slots=" << slots << " chunk_rows=" << chunk_rows
            << (interleave ? " greedy" : " program-order") << "\n"
            << res.to_string();
        // Prefill lanes' sublayers are tagged; the decode lane's are not.
        for (std::size_t s = 0; s < fused.segments.size(); ++s)
          EXPECT_EQ(fused.segments[s].prefill,
                    s + 3 < fused.segments.size());
        EXPECT_GE(fused.prefill_stall, 0);
        EXPECT_GT(fused.stats.prefill_sa_busy, 0);
      }
}

TEST(PrefillAudit, FullSizeChunkMatchesScheduleMhaIntervals) {
  // A full-size kMhaPrefill chunk issued in program order builds exactly
  // Algorithm 1's encoder MHA graph: same ops, same placement.
  AcceleratorConfig cfg = accel_config(false);
  for (const int rows : {7, 16}) {
    Timeline tl_chunk, tl_mha;
    const ScheduledRun chunk = schedule_prefill(
        cfg, tl_chunk, SublayerPlan::mha_prefill("m", rows, rows, 512, 8,
                                                 rows));
    const ScheduledRun mha = schedule_mha(cfg, tl_mha, rows, rows, 512, 8);
    ASSERT_EQ(chunk.graph.size(), mha.graph.size()) << rows;
    ASSERT_EQ(chunk.stats.intervals.size(), mha.stats.intervals.size());
    for (std::size_t i = 0; i < mha.stats.intervals.size(); ++i) {
      EXPECT_EQ(chunk.stats.intervals[i].start, mha.stats.intervals[i].start)
          << "op " << i << " rows=" << rows;
      EXPECT_EQ(chunk.stats.intervals[i].end, mha.stats.intervals[i].end);
    }
  }
}

// --- Serve-level bit-identity and determinism --------------------------------

std::vector<Cycle> staggered_arrivals(std::size_t n, Cycle gap) {
  std::vector<Cycle> arrivals(n);
  for (std::size_t i = 0; i < n; ++i)
    arrivals[i] = static_cast<Cycle>(i) * gap;
  return arrivals;
}

TEST(PrefillPackServe, PackedBitIdenticalToEagerOnAllBackends) {
  for (const ServeBackend backend :
       {ServeBackend::kReference, ServeBackend::kQuantized,
        ServeBackend::kAccelerator}) {
    Rng rng(171);
    const TransformerWeights weights = TransformerWeights::random(
        backend == ServeBackend::kReference ? micro_config() : hw_config(),
        20, rng);
    const auto calib = backend == ServeBackend::kReference
                           ? std::vector<TokenSeq>{}
                           : calib_sources();
    std::vector<TokenSeq> eager_outputs;
    for (const bool pack : {false, true})
      for (const int chunk_rows : {1, 4, 64}) {
        Scheduler sched(weights, calib,
                        serve_config(backend, 2, 4, pack, chunk_rows));
        const ScheduleReport rep = sched.run(ragged_sources());
        if (eager_outputs.empty())
          eager_outputs = rep.outputs;
        else
          EXPECT_EQ(rep.outputs, eager_outputs)
              << "backend=" << static_cast<int>(backend) << " pack=" << pack
              << " chunk_rows=" << chunk_rows;
        if (pack)
          EXPECT_GT(rep.prefill_chunks(), 0);
        else
          EXPECT_EQ(rep.prefill_chunks(), 0);
      }
  }
}

TEST(PrefillPackServe, BeamAndStaggeredArrivalsKeepOutputs) {
  Rng rng(172);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  SchedulerConfig cfg = serve_config(ServeBackend::kAccelerator, 2, 8, true);
  cfg.beam_size = 2;
  Scheduler sched(weights, calib_sources(), cfg);
  const ScheduleReport burst = sched.run(ragged_sources());
  const ScheduleReport staggered = sched.run(
      ragged_sources(), staggered_arrivals(ragged_sources().size(), 700));
  EXPECT_EQ(burst.outputs, staggered.outputs);

  SchedulerConfig eager_cfg = cfg;
  eager_cfg.accel.pack_prefill = false;
  Scheduler eager(weights, calib_sources(), eager_cfg);
  EXPECT_EQ(eager.run(ragged_sources()).outputs, burst.outputs);
}

TEST(PrefillPackServe, BurstAdmissionOrderIsDeterministic) {
  // Repeated multi-card runs must reproduce outputs AND every per-card
  // cycle ledger exactly: admission follows simulated time, not host
  // thread scheduling — with or without staggered arrivals.
  Rng rng(173);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Scheduler sched(weights, calib_sources(),
                  serve_config(ServeBackend::kAccelerator, 4, 4, true, 4));
  const auto arrivals = staggered_arrivals(ragged_sources().size(), 300);
  for (const bool stagger : {false, true}) {
    const ScheduleReport first = stagger
                                     ? sched.run(ragged_sources(), arrivals)
                                     : sched.run(ragged_sources());
    for (int trial = 0; trial < 2; ++trial) {
      const ScheduleReport rep =
          stagger ? sched.run(ragged_sources(), arrivals)
                  : sched.run(ragged_sources());
      EXPECT_EQ(rep.outputs, first.outputs);
      ASSERT_EQ(rep.per_card.size(), first.per_card.size());
      for (std::size_t c = 0; c < rep.per_card.size(); ++c) {
        EXPECT_EQ(rep.per_card[c].total_cycles(),
                  first.per_card[c].total_cycles())
            << "card " << c << " stagger=" << stagger;
        EXPECT_EQ(rep.per_card[c].sa_busy_cycles,
                  first.per_card[c].sa_busy_cycles);
        EXPECT_EQ(rep.per_card[c].prefill_stall_cycles,
                  first.per_card[c].prefill_stall_cycles);
        EXPECT_EQ(rep.per_card_steps[c].prefill_chunks,
                  first.per_card_steps[c].prefill_chunks);
      }
    }
  }
}

TEST(PrefillPackServe, PrefillOnlyQueueRunsChunksWithoutPackedSteps) {
  // Single sentence, chunk_rows=1: the queue holds only a not-yet-prefilled
  // sentence for the first several iterations — they must run prefill-only
  // ledgers, not count as packed steps, and still decode correctly.
  Rng rng(174);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Scheduler packed(weights, calib_sources(),
                   serve_config(ServeBackend::kAccelerator, 1, 4, true, 1));
  const std::vector<TokenSeq> one = {{10, 3, 11, 4, 12, 5, 13}};
  const ScheduleReport rep = packed.run(one);

  Scheduler eager(weights, calib_sources(),
                  serve_config(ServeBackend::kAccelerator, 1, 4, false));
  const ScheduleReport eager_rep = eager.run(one);
  EXPECT_EQ(rep.outputs, eager_rep.outputs);
  // 7 source rows, 2 encoder layers, 1-row chunks: 28 prefill-only
  // iterations before the first decode row.
  EXPECT_EQ(rep.prefill_chunks(), 28);
  EXPECT_EQ(rep.packed_steps(), eager_rep.packed_steps());
  EXPECT_DOUBLE_EQ(rep.packed_rows_mean(), 1.0);  // greedy, one sentence
  // Same total work, differently bucketed: the packed run charges encoder
  // cycles through step ledgers, the eager run through per-run ledgers.
  EXPECT_EQ(rep.sentences(), eager_rep.sentences());
}

TEST(PrefillPackServe, EagerAdmissionChargesPrefillStallAndPackingShrinksIt) {
  Rng rng(175);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  // 2 slots on one card: admissions after the first land while a live
  // sentence is mid-decode, so the eager encoder pass stalls it.
  Scheduler eager(weights, calib_sources(),
                  serve_config(ServeBackend::kAccelerator, 1, 2, false));
  const ScheduleReport eager_rep = eager.run(ragged_sources());
  EXPECT_GT(eager_rep.prefill_stall_cycles(), 0);

  Scheduler packed(weights, calib_sources(),
                   serve_config(ServeBackend::kAccelerator, 1, 2, true));
  const ScheduleReport packed_rep = packed.run(ragged_sources());
  EXPECT_EQ(packed_rep.outputs, eager_rep.outputs);
  EXPECT_LT(packed_rep.prefill_stall_cycles(),
            eager_rep.prefill_stall_cycles());
  // Packing splices the same encoder work through the step ledgers instead
  // of standalone runs, so the farm finishes no later.
  EXPECT_LE(packed_rep.makespan_cycles(), eager_rep.makespan_cycles());
}

TEST(PrefillPackServe, RunRejectsBadArrivals) {
  Rng rng(176);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  Scheduler sched(weights, calib_sources(),
                  serve_config(ServeBackend::kAccelerator, 1, 2, true));
  const std::vector<TokenSeq> sources = {{3, 4}, {5, 6}};
  EXPECT_THROW(sched.run(sources, {0}), CheckError);          // size mismatch
  EXPECT_THROW(sched.run(sources, {-1, 0}), CheckError);      // negative
  EXPECT_THROW(sched.run(sources, {100, 50}), CheckError);    // decreasing
  EXPECT_EQ(sched.run(sources, {50, 100}).outputs,
            sched.run(sources).outputs);
}

}  // namespace
}  // namespace tfacc
