// Unit and property tests for the FP32 reference Transformer.
#include <gtest/gtest.h>

#include <cmath>

#include "reference/functional.hpp"
#include "reference/transformer.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

ModelConfig micro_config() {
  // Small but pattern-conforming: d_model = 16·h? The Table I pattern wants
  // head_dim·h; tests use head_dim 16 to stay fast.
  ModelConfig cfg;
  cfg.name = "micro";
  cfg.d_model = 32;
  cfg.d_ff = 128;
  cfg.num_heads = 2;
  cfg.head_dim = 16;
  cfg.num_encoder_layers = 2;
  cfg.num_decoder_layers = 2;
  return cfg;
}

TEST(Masks, CausalMaskShape) {
  const Mask m = causal_mask(4);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), c > r ? 1 : 0);
}

TEST(Masks, PaddingMask) {
  const Mask m = padding_mask(2, 5, 3);
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(m(r, 2), 0);
    EXPECT_EQ(m(r, 3), 1);
    EXPECT_EQ(m(r, 4), 1);
  }
  EXPECT_THROW(padding_mask(2, 5, 6), CheckError);
}

TEST(Softmax, RowsSumToOneWhenUnmasked) {
  Rng rng(1);
  MatF d(6, 9);
  fill_normal(d, rng, 0, 10);
  const MatF p = scaled_masked_softmax(d, no_mask(6, 9));
  for (int r = 0; r < p.rows(); ++r) {
    double sum = 0;
    for (int c = 0; c < p.cols(); ++c) {
      EXPECT_GE(p(r, c), 0.0f);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, MaskedEntriesAreZeroAndRestRenormalizes) {
  MatF d{{1, 2, 3, 4}};
  Mask m(1, 4);
  m(0, 1) = 1;
  m(0, 3) = 1;
  const MatF p = scaled_masked_softmax(d, m, 1.0f);
  EXPECT_EQ(p(0, 1), 0.0f);
  EXPECT_EQ(p(0, 3), 0.0f);
  EXPECT_NEAR(p(0, 0) + p(0, 2), 1.0, 1e-6);
  // Remaining entries keep the softmax ratio exp(1)/exp(3).
  EXPECT_NEAR(p(0, 2) / p(0, 0), std::exp(2.0), 1e-4);
}

TEST(Softmax, FullyMaskedRowIsAllZeros) {
  MatF d{{5, 5}};
  Mask m(1, 2);
  m(0, 0) = m(0, 1) = 1;
  const MatF p = scaled_masked_softmax(d, m);
  EXPECT_EQ(p(0, 0), 0.0f);
  EXPECT_EQ(p(0, 1), 0.0f);
}

TEST(Softmax, NumericallyStableForHugeScores) {
  MatF d{{1e30f, -1e30f, 0.0f}};
  const MatF p = scaled_masked_softmax(d, no_mask(1, 3), 1.0f);
  EXPECT_NEAR(p(0, 0), 1.0, 1e-6);
  EXPECT_EQ(std::isfinite(p(0, 1)), true);
}

TEST(Softmax, ScaleDividesScores) {
  MatF d{{8, 0}};
  const MatF p8 = scaled_masked_softmax(d, no_mask(1, 2), 8.0f);
  const MatF d1{{1, 0}};
  const MatF p1 = scaled_masked_softmax(d1, no_mask(1, 2), 1.0f);
  EXPECT_NEAR(p8(0, 0), p1(0, 0), 1e-6);
}

TEST(LayerNorm, NormalizesRowsToZeroMeanUnitVar) {
  Rng rng(2);
  MatF g(5, 64);
  fill_normal(g, rng, 3.0f, 7.0f);
  const MatF y = layer_norm(g, LayerNormParams::identity(64));
  for (int r = 0; r < y.rows(); ++r) {
    double mean = 0, var = 0;
    for (int c = 0; c < 64; ++c) mean += y(r, c);
    mean /= 64;
    for (int c = 0; c < 64; ++c) var += (y(r, c) - mean) * (y(r, c) - mean);
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  MatF g{{1, 2, 3, 4}};
  LayerNormParams p;
  p.gamma = {2, 2, 2, 2};
  p.beta = {1, 1, 1, 1};
  const MatF y = layer_norm(g, p);
  const MatF base = layer_norm(g, LayerNormParams::identity(4));
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(y(0, c), 2 * base(0, c) + 1, 1e-5);
}

TEST(LayerNorm, ConstantRowMapsToBeta) {
  MatF g{{5, 5, 5, 5}};
  LayerNormParams p = LayerNormParams::identity(4);
  p.beta = {0.5f, 0.5f, 0.5f, 0.5f};
  const MatF y = layer_norm(g, p);
  // var = 0, ε keeps it finite: normalized value 0 → output β.
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(y(0, c), 0.5f, 1e-4);
}

TEST(Attention, UniformScoresAverageValues) {
  // q ⟂ k ⇒ all scores 0 ⇒ probs uniform ⇒ output = column means of V.
  MatF q(2, 4), k(3, 4), v{{3, 0}, {6, 3}, {9, 6}};
  const MatF o = attention_head(q, k, v, no_mask(2, 3));
  EXPECT_NEAR(o(0, 0), 6.0, 1e-5);
  EXPECT_NEAR(o(0, 1), 3.0, 1e-5);
  EXPECT_NEAR(o(1, 0), 6.0, 1e-5);
}

TEST(Attention, CausalMaskBlocksFuture) {
  Rng rng(9);
  MatF q(3, 4), k(3, 4), v(3, 4);
  fill_normal(q, rng, 0, 1);
  fill_normal(k, rng, 0, 1);
  fill_normal(v, rng, 0, 1);
  const MatF o = attention_head(q, k, v, causal_mask(3));
  // Row 0 may only attend to position 0 → output row 0 == v row 0.
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(o(0, c), v(0, c), 1e-5);
}

TEST(MhaResblock, OutputShapeAndFiniteness) {
  const ModelConfig cfg = micro_config();
  Rng rng(4);
  const MhaWeights w = MhaWeights::random(cfg, rng);
  MatF q(5, cfg.d_model), kv(7, cfg.d_model);
  fill_normal(q, rng, 0, 1);
  fill_normal(kv, rng, 0, 1);
  const MatF y = mha_resblock(q, kv, w, no_mask(5, 7));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), cfg.d_model);
  for (int r = 0; r < y.rows(); ++r)
    for (int c = 0; c < y.cols(); ++c) EXPECT_TRUE(std::isfinite(y(r, c)));
}

TEST(MhaResblock, PreNormPlusNormEqualsResblock) {
  const ModelConfig cfg = micro_config();
  Rng rng(5);
  const MhaWeights w = MhaWeights::random(cfg, rng);
  MatF x(4, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const Mask m = no_mask(4, 4);
  const MatF g = mha_pre_norm(x, x, w, m);
  EXPECT_LT(max_abs_diff(layer_norm(g, w.norm), mha_resblock(x, x, w, m)),
            1e-6);
}

TEST(FfnResblock, MatchesManualComposition) {
  const ModelConfig cfg = micro_config();
  Rng rng(6);
  const FfnWeights w = FfnWeights::random(cfg, rng);
  MatF x(3, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const MatF manual = layer_norm(
      add(x, add_bias(gemm(relu(add_bias(gemm(x, w.w1), w.b1)), w.w2), w.b2)),
      w.norm);
  EXPECT_LT(max_abs_diff(manual, ffn_resblock(x, w)), 1e-6);
}

TEST(PositionalEncoding, SinCosStructure) {
  const MatF pe = positional_encoding(16, 8);
  // Position 0: sin(0)=0, cos(0)=1 interleaved.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(pe(0, 2 * i), 0.0, 1e-6);
    EXPECT_NEAR(pe(0, 2 * i + 1), 1.0, 1e-6);
  }
  // All entries within [-1, 1].
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 8; ++c) {
      EXPECT_GE(pe(r, c), -1.0f);
      EXPECT_LE(pe(r, c), 1.0f);
    }
}

TEST(Transformer, GreedyDecodeIsDeterministic) {
  const ModelConfig cfg = micro_config();
  Rng rng(7);
  Transformer model(TransformerWeights::random(cfg, 20, rng));
  const TokenSeq src{3, 4, 5, 6};
  const TokenSeq a = model.translate_greedy(src, 12);
  const TokenSeq b = model.translate_greedy(src, 12);
  EXPECT_EQ(a, b);
  EXPECT_LE(static_cast<int>(a.size()), 12);
}

TEST(Transformer, EncoderMasksTrailingPadding) {
  const ModelConfig cfg = micro_config();
  Rng rng(8);
  Transformer model(TransformerWeights::random(cfg, 20, rng));
  // Same content, one padded: non-pad rows of the memory must agree.
  const TokenSeq plain{3, 4, 5};
  const TokenSeq padded{3, 4, 5, kPadId, kPadId};
  const MatF m1 = model.encode(plain);
  const MatF m2 = model.encode(padded);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < cfg.d_model; ++c)
      EXPECT_NEAR(m1(r, c), m2(r, c), 1e-4) << r << ',' << c;
}

TEST(Transformer, BackendSwapChangesImplementationNotInterface) {
  const ModelConfig cfg = micro_config();
  Rng rng(10);
  Transformer model(TransformerWeights::random(cfg, 20, rng));
  const TokenSeq src{3, 7, 9};
  const TokenSeq base = model.translate_greedy(src, 8);
  int mha_calls = 0;
  ResBlockBackend counting;
  counting.mha = [&mha_calls](const MatF& q, const MatF& kv,
                              const MhaWeights& w, const Mask& m) {
    ++mha_calls;
    return mha_resblock(q, kv, w, m);
  };
  model.set_backend(counting);
  EXPECT_EQ(model.translate_greedy(src, 8), base);
  EXPECT_GT(mha_calls, 0);
}

}  // namespace
}  // namespace tfacc
