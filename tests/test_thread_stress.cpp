// Thread-stress determinism suite for the convoy-free admission protocol
// (PR 9): repeated N-card runs — greedy and beam, burst and staggered
// arrivals — must reproduce the admission order, the outputs, every per-card
// step/cycle ledger, and (under verify_schedules) the per-card ledger-stream
// fingerprints EXACTLY, at every host-thread count, and all of it must match
// the forced-serial run (host_threads = 1), where no two cards ever race.
// Built into the TSan CI job, so the reservation gate and the worker pool's
// park/unpark handoffs are also exercised under the race detector.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/backend.hpp"
#include "serve/scheduler.hpp"

namespace tfacc {
namespace {

ModelConfig hw_config() {
  ModelConfig cfg;
  cfg.name = "stress-hw";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 2;
  return cfg;
}

std::vector<TokenSeq> calib_sources() { return {{3, 4, 5}, {6, 7}}; }

// Ragged lengths so sentences finish at different steps and slots churn
// mid-run — admissions then interleave with live decode work on every card.
std::vector<TokenSeq> stress_sources() {
  return {{3, 4, 5, 6},
          {7},
          {10, 3, 11, 4, 12, 5, 13},
          {5, 5, 6},
          {3, 4, 5, 6},
          {8, 9, 3, 4},
          {6, 7, 8, 9, 10, 11},
          {4},
          {9, 8, 7},
          {3, 5, 7, 9, 11},
          {12, 13},
          {4, 4, 4, 4}};
}

// Staggered arrivals (non-decreasing, gaps larger than a step) force the
// idle-forward clock_floor path and pending-arrival grants to fire too.
std::vector<Cycle> staggered_arrivals(std::size_t n, Cycle gap) {
  std::vector<Cycle> arrivals;
  arrivals.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    arrivals.push_back(static_cast<Cycle>(i / 3) * gap);
  return arrivals;
}

// Everything that must be invariant across host-thread counts and repeats:
// outputs, admission order, and the full per-card simulated ledgers.
void expect_reports_identical(const ScheduleReport& a, const ScheduleReport& b,
                              const std::string& what) {
  EXPECT_EQ(a.outputs, b.outputs) << what;
  ASSERT_EQ(a.per_card.size(), b.per_card.size()) << what;
  for (std::size_t c = 0; c < a.per_card.size(); ++c) {
    const std::string where = what + ", card " + std::to_string(c);
    EXPECT_EQ(a.per_card_steps[c].admitted, b.per_card_steps[c].admitted)
        << where << " (admission order)";
    EXPECT_EQ(a.per_card_steps[c].steps, b.per_card_steps[c].steps) << where;
    EXPECT_EQ(a.per_card_steps[c].packed_rows,
              b.per_card_steps[c].packed_rows)
        << where;
    EXPECT_EQ(a.per_card_steps[c].sentences, b.per_card_steps[c].sentences)
        << where;
    EXPECT_EQ(a.per_card_steps[c].prefill_chunks,
              b.per_card_steps[c].prefill_chunks)
        << where;
    EXPECT_EQ(a.per_card_steps[c].rows_hist, b.per_card_steps[c].rows_hist)
        << where;
    EXPECT_EQ(a.per_card[c].total_cycles(), b.per_card[c].total_cycles())
        << where;
    EXPECT_EQ(a.per_card[c].fused_steps, b.per_card[c].fused_steps) << where;
    EXPECT_EQ(a.per_card[c].prefill_stall_cycles,
              b.per_card[c].prefill_stall_cycles)
        << where;
    EXPECT_EQ(a.per_card[c].ledger_fingerprint,
              b.per_card[c].ledger_fingerprint)
        << where << " (ledger stream)";
  }
}

// Run the same workload at several host-thread counts (1 = forced serial,
// cooperative on the calling thread; 0 = auto) with repeats, and demand
// bit-identical reports throughout.
void stress(SchedulerConfig cfg, const std::vector<TokenSeq>& sources,
            const std::vector<Cycle>& arrivals, int repeats) {
  Rng rng(424242);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);

  cfg.host_threads = 1;  // forced serial: the golden, race-free reports
  Scheduler serial(weights, calib_sources(), cfg);
  const ScheduleReport golden = serial.run(sources, arrivals);
  int admitted_total = 0;
  for (const CardStepStats& s : golden.per_card_steps)
    admitted_total += static_cast<int>(s.admitted.size());
  EXPECT_EQ(admitted_total, static_cast<int>(sources.size()));

  for (const int threads : {0, 2, 4}) {
    cfg.host_threads = threads;
    Scheduler sched(weights, calib_sources(), cfg);
    for (int r = 0; r < repeats; ++r) {
      const ScheduleReport rep = sched.run(sources, arrivals);
      expect_reports_identical(golden, rep,
                               "host_threads " + std::to_string(threads) +
                                   ", repeat " + std::to_string(r));
    }
  }
}

SchedulerConfig stress_config(ServeBackend backend, int cards, int slots) {
  SchedulerConfig cfg;
  cfg.backend = backend;
  cfg.num_cards = cards;
  cfg.slots_per_card = slots;
  cfg.max_len = 10;
  return cfg;
}

TEST(ThreadStress, HostThreadsKnobValidatesAndClamps) {
  SchedulerConfig cfg = stress_config(ServeBackend::kReference, 2, 4);
  cfg.host_threads = -1;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.host_threads = 0;
  EXPECT_NO_THROW(cfg.validate());
  // More threads than cards is legal (clamped to one thread per card).
  Rng rng(7);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  cfg.host_threads = 16;
  Scheduler sched(weights, {}, cfg);
  const ScheduleReport rep = sched.run(stress_sources());
  EXPECT_EQ(rep.sentences(), static_cast<int>(stress_sources().size()));
}

// Accelerator + verify_schedules: every charged ledger is hashed, so the
// per-card ledger_fingerprint pins the exact ledger STREAM (content and
// order), not just cycle totals.
TEST(ThreadStress, AcceleratorGreedyBurstLedgerStreamsInvariant) {
  SchedulerConfig cfg = stress_config(ServeBackend::kAccelerator, 3, 4);
  cfg.accel.verify_schedules = true;
  stress(cfg, stress_sources(), {}, /*repeats=*/2);
}

TEST(ThreadStress, AcceleratorGreedyStaggeredArrivalsInvariant) {
  SchedulerConfig cfg = stress_config(ServeBackend::kAccelerator, 3, 4);
  cfg.accel.verify_schedules = true;
  stress(cfg, stress_sources(),
         staggered_arrivals(stress_sources().size(), 200000), /*repeats=*/2);
}

TEST(ThreadStress, AcceleratorBeamStaggeredArrivalsInvariant) {
  SchedulerConfig cfg = stress_config(ServeBackend::kAccelerator, 2, 6);
  cfg.beam_size = 3;
  cfg.accel.verify_schedules = true;
  stress(cfg, stress_sources(),
         staggered_arrivals(stress_sources().size(), 200000), /*repeats=*/2);
}

// Functional backend (no cycle model): the admission order runs off the
// work-proxy virtual clock; outputs, admission order and step ledgers must
// be just as invariant.
TEST(ThreadStress, QuantizedGreedyStaggeredArrivalsInvariant) {
  stress(stress_config(ServeBackend::kQuantized, 4, 3), stress_sources(),
         staggered_arrivals(stress_sources().size(), 10), /*repeats=*/3);
}

TEST(ThreadStress, QuantizedBeamBurstInvariant) {
  SchedulerConfig cfg = stress_config(ServeBackend::kQuantized, 3, 6);
  cfg.beam_size = 3;
  stress(cfg, stress_sources(), {}, /*repeats=*/3);
}

// Eager-encode ablation (pack_prefill off): admission keeps the old
// admit-at-top order, now expressed through held reservations — still
// deterministic at every thread count.
TEST(ThreadStress, EagerEncodeStaggeredArrivalsInvariant) {
  SchedulerConfig cfg = stress_config(ServeBackend::kAccelerator, 3, 4);
  cfg.accel.pack_prefill = false;
  cfg.accel.verify_schedules = true;
  stress(cfg, stress_sources(),
         staggered_arrivals(stress_sources().size(), 200000), /*repeats=*/2);
}

}  // namespace
}  // namespace tfacc
