// Tests for core/batch_runner: batched multi-card decode must be
// bit-identical to serial decode, invariant under thread count, and the
// modeled farm throughput must improve with more cards.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/batch_runner.hpp"
#include "nlp/synthetic.hpp"
#include "reference/weights.hpp"

namespace tfacc {
namespace {

ModelConfig small_config() {
  ModelConfig cfg;
  cfg.name = "batch-test";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 1;
  return cfg;
}

struct BatchFixture {
  SyntheticTranslationTask task{24, 5, 7};
  TransformerWeights weights;
  std::vector<TokenSeq> calib;
  std::vector<TokenSeq> sources;
  int max_len;

  explicit BatchFixture(int num_sources = 8) : weights(make_weights()) {
    Rng rng(11);
    for (int i = 0; i < 4; ++i) calib.push_back(task.sample(rng).source);
    for (int i = 0; i < num_sources; ++i)
      sources.push_back(task.sample(rng).source);
    max_len = task.max_len() + 2;
  }

 private:
  TransformerWeights make_weights() {
    Rng rng(3);
    return TransformerWeights::random(small_config(),
                                      SyntheticTranslationTask(24, 5, 7)
                                          .vocab_size(),
                                      rng);
  }
};

BatchConfig config_with_cards(int cards, int max_len) {
  BatchConfig cfg;
  cfg.num_cards = cards;
  cfg.max_len = max_len;
  return cfg;
}

TEST(BatchConfig, RejectsBadArguments) {
  BatchConfig cfg;
  cfg.num_cards = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.num_cards = 1;
  cfg.max_len = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.max_len = 1;
  cfg.slots_per_card = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(BatchRunner, RequiresCalibrationSentences) {
  const BatchFixture fx(1);
  EXPECT_THROW(BatchRunner(fx.weights, {}, config_with_cards(1, fx.max_len)),
               CheckError);
}

// The headline guarantee: decoding a batch across many cards produces
// exactly the sequences a plain serial accelerator-backend decode produces.
TEST(BatchRunner, BatchedDecodeBitIdenticalToSerial) {
  const BatchFixture fx(8);

  // Serial reference: one model, one accelerator, one sentence at a time —
  // the examples/translate.cpp deployment.
  Transformer model(fx.weights);
  const auto qt = QuantizedTransformer::build(model, fx.calib, fx.max_len,
                                              SoftmaxImpl::kHardware);
  Accelerator acc;
  std::vector<TokenSeq> serial;
  model.set_backend(accelerator_backend(qt, acc, nullptr));
  for (const TokenSeq& src : fx.sources)
    serial.push_back(model.translate_greedy(src, fx.max_len));
  model.set_backend(ResBlockBackend{});

  BatchRunner runner(fx.weights, fx.calib, config_with_cards(4, fx.max_len));
  const BatchReport rep = runner.run(fx.sources);

  ASSERT_EQ(rep.outputs.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(rep.outputs[i], serial[i]) << "sentence " << i;
}

TEST(BatchRunner, OutputsInvariantUnderThreadCount) {
  const BatchFixture fx(10);
  BatchRunner one(fx.weights, fx.calib, config_with_cards(1, fx.max_len));
  BatchRunner eight(fx.weights, fx.calib, config_with_cards(8, fx.max_len));

  const BatchReport rep1 = one.run(fx.sources);
  const BatchReport rep8 = eight.run(fx.sources);

  ASSERT_EQ(rep1.outputs.size(), rep8.outputs.size());
  for (std::size_t i = 0; i < rep1.outputs.size(); ++i)
    EXPECT_EQ(rep1.outputs[i], rep8.outputs[i]) << "sentence " << i;

  // The work is the same, only its distribution changes: summed ResBlock
  // invocations and cycles must match exactly.
  long mha1 = 0, mha8 = 0, ffn1 = 0, ffn8 = 0;
  for (const AcceleratorStats& s : rep1.per_card) {
    mha1 += s.mha_runs;
    ffn1 += s.ffn_runs;
  }
  for (const AcceleratorStats& s : rep8.per_card) {
    mha8 += s.mha_runs;
    ffn8 += s.ffn_runs;
  }
  EXPECT_EQ(mha1, mha8);
  EXPECT_EQ(ffn1, ffn8);
  EXPECT_EQ(rep1.total_cycles(), rep8.total_cycles());
}

TEST(BatchRunner, RunIsRepeatable) {
  const BatchFixture fx(6);
  // Request placement follows the simulated-time admission gate, not host
  // thread timing, so even multi-card per-card ledgers reproduce exactly.
  BatchRunner runner(fx.weights, fx.calib, config_with_cards(3, fx.max_len));
  const BatchReport a = runner.run(fx.sources);
  const BatchReport b = runner.run(fx.sources);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
  EXPECT_EQ(a.makespan_cycles(), b.makespan_cycles());
}

// More cards shrink the farm's makespan: the modeled throughput must rise
// and the busiest card must carry less than the whole serial load.
TEST(BatchRunner, ModeledThroughputImprovesWithCards) {
  const BatchFixture fx(8);
  BatchRunner one(fx.weights, fx.calib, config_with_cards(1, fx.max_len));
  BatchRunner four(fx.weights, fx.calib, config_with_cards(4, fx.max_len));

  const BatchReport rep1 = one.run(fx.sources);
  const BatchReport rep4 = four.run(fx.sources);

  EXPECT_EQ(rep1.makespan_cycles(), rep1.total_cycles());
  EXPECT_LT(rep4.makespan_cycles(), rep1.makespan_cycles());
  EXPECT_GT(rep4.modeled_sentences_per_second(),
            rep1.modeled_sentences_per_second());
}

TEST(BatchRunner, MoreCardsThanSentences) {
  const BatchFixture fx(2);
  BatchRunner runner(fx.weights, fx.calib, config_with_cards(6, fx.max_len));
  const BatchReport rep = runner.run(fx.sources);
  ASSERT_EQ(rep.outputs.size(), 2u);
  ASSERT_EQ(rep.per_card.size(), 6u);
  // The admission gate spreads the two sentences over two distinct cards
  // (least-loaded card takes the next request) regardless of host timing.
  int busy_cards = 0;
  for (const AcceleratorStats& s : rep.per_card)
    if (s.total_cycles() > 0) ++busy_cards;
  EXPECT_EQ(busy_cards, 2);
}

// The continuous-batching satellite: slots_per_card > 1 packs sentences into
// multi-row decode steps — same outputs, fuller SA tiles, fewer cycles.
TEST(BatchRunner, PackedSlotsKeepOutputsAndRaiseUtilization) {
  const BatchFixture fx(8);
  BatchConfig one_row = config_with_cards(1, fx.max_len);
  BatchConfig packed = config_with_cards(1, fx.max_len);
  packed.slots_per_card = 8;
  BatchRunner runner1(fx.weights, fx.calib, one_row);
  BatchRunner runner8(fx.weights, fx.calib, packed);
  const BatchReport rep1 = runner1.run(fx.sources);
  const BatchReport rep8 = runner8.run(fx.sources);

  EXPECT_EQ(rep1.outputs, rep8.outputs);
  EXPECT_EQ(rep1.packed_rows_mean(), 1.0);
  EXPECT_GT(rep8.packed_rows_mean(), 1.0);
  EXPECT_LT(rep8.makespan_cycles(), rep1.makespan_cycles());
  EXPECT_GT(rep8.sa_utilization(), rep1.sa_utilization());
}

TEST(BatchRunner, EmptyBatch) {
  const BatchFixture fx(1);
  BatchRunner runner(fx.weights, fx.calib, config_with_cards(2, fx.max_len));
  const BatchReport rep = runner.run({});
  EXPECT_EQ(rep.sentences(), 0);
  EXPECT_EQ(rep.makespan_cycles(), 0);
  EXPECT_EQ(rep.modeled_sentences_per_second(), 0.0);
}

}  // namespace
}  // namespace tfacc
