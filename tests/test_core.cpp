// Tests for the accelerator core: bit-exactness against the quantized
// functional models, cycle-count regression at the paper's design point,
// the softmax-overlap invariant, and the Fig. 7 LayerNorm strategies.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "quant/qresblock.hpp"
#include "reference/functional.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

ModelConfig hw_config() {
  ModelConfig cfg;
  cfg.name = "hw-test";
  cfg.d_model = 128;
  cfg.d_ff = 512;
  cfg.num_heads = 2;
  cfg.head_dim = 64;
  return cfg;
}

MhaQuantized build_mha(const ModelConfig& cfg, Rng& rng, int s,
                       SoftmaxImpl impl, const Mask& mask) {
  const MhaWeights w = MhaWeights::random(cfg, rng);
  MhaQuantized::Calibration calib;
  for (int i = 0; i < 2; ++i) {
    MatF q(s, cfg.d_model), kv(mask.cols(), cfg.d_model);
    fill_normal(q, rng, 0, 1);
    fill_normal(kv, rng, 0, 1);
    calib.q.push_back(q);
    calib.kv.push_back(kv);
    calib.mask.push_back(mask);
  }
  return MhaQuantized::build(w, calib, impl);
}

FfnQuantized build_ffn(const ModelConfig& cfg, Rng& rng, int s) {
  const FfnWeights w = FfnWeights::random(cfg, rng);
  std::vector<MatF> samples;
  for (int i = 0; i < 2; ++i) {
    MatF x(s, cfg.d_model);
    fill_normal(x, rng, 0, 1);
    samples.push_back(x);
  }
  return FfnQuantized::build(w, samples);
}

class AcceleratorBitExact : public ::testing::TestWithParam<SoftmaxImpl> {};

TEST_P(AcceleratorBitExact, MhaMatchesQuantizedModelBitForBit) {
  const ModelConfig cfg = hw_config();
  Rng rng(1);
  const int s = 16;
  const Mask mask = no_mask(s, s);
  const auto qm = build_mha(cfg, rng, s, GetParam(), mask);
  MatF q(s, cfg.d_model), kv(s, cfg.d_model);
  fill_normal(q, rng, 0, 1);
  fill_normal(kv, rng, 0, 1);
  const MatI8 qi = qm.quantize_q(q), kvi = qm.quantize_kv(kv);

  Accelerator acc;
  const auto result = acc.run_mha(qm, qi, kvi, mask);
  EXPECT_EQ(result.out, qm.forward(qi, kvi, mask));
}

TEST_P(AcceleratorBitExact, MhaCrossAttentionShapes) {
  // Decoder cross-attention: query length != key/value length.
  const ModelConfig cfg = hw_config();
  Rng rng(2);
  const int s_q = 5, s_kv = 24;
  const Mask mask = no_mask(s_q, s_kv);
  const auto qm = build_mha(cfg, rng, s_q, GetParam(), mask);
  MatF q(s_q, cfg.d_model), kv(s_kv, cfg.d_model);
  fill_normal(q, rng, 0, 1);
  fill_normal(kv, rng, 0, 1);
  const MatI8 qi = qm.quantize_q(q), kvi = qm.quantize_kv(kv);
  Accelerator acc;
  const auto result = acc.run_mha(qm, qi, kvi, mask);
  EXPECT_EQ(result.out, qm.forward(qi, kvi, mask));
  EXPECT_EQ(result.out.rows(), s_q);
}

TEST_P(AcceleratorBitExact, MhaLongSequenceUsesRowChunking) {
  // s = 128 > SA rows: the Section III "partition the Q_i" path.
  const ModelConfig cfg = hw_config();
  Rng rng(3);
  const int s = 128;
  const Mask mask = causal_mask(s);
  const auto qm = build_mha(cfg, rng, s, GetParam(), mask);
  MatF x(s, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const MatI8 xi = qm.quantize_q(x), kvi = qm.quantize_kv(x);
  Accelerator acc;
  const auto result = acc.run_mha(qm, xi, kvi, mask);
  EXPECT_EQ(result.out, qm.forward(xi, kvi, mask));
}

INSTANTIATE_TEST_SUITE_P(SoftmaxImpls, AcceleratorBitExact,
                         ::testing::Values(SoftmaxImpl::kFloatExact,
                                           SoftmaxImpl::kHardware));

TEST(Accelerator, FfnMatchesQuantizedModelBitForBit) {
  const ModelConfig cfg = hw_config();
  Rng rng(4);
  const int s = 16;
  const auto qf = build_ffn(cfg, rng, s);
  MatF x(s, cfg.d_model);
  fill_normal(x, rng, 0, 1);
  const MatI8 xi = qf.quantize_in(x);
  Accelerator acc;
  const auto result = acc.run_ffn(qf, xi);
  EXPECT_EQ(result.out, qf.forward(xi));
}

// --- Cycle counts (Section V.B) ---------------------------------------------
//
// Paper: 21,344 cycles (MHA) and 42,099 cycles (FFN) at s = 64, batch 1.
// The model reproduces 21,188 (-0.73%) and 40,516 (-3.76%) — pinned here as
// regression values; EXPERIMENTS.md discusses the deltas.

TEST(CycleCounts, MhaPaperDesignPoint) {
  Accelerator acc;
  const RunReport rep = acc.time_mha(64, 64, 512, 8);
  EXPECT_EQ(rep.total_cycles, 21188);
  EXPECT_NEAR(rep.microseconds(), 105.94, 0.01);
  // Within 5% of the paper's 21,344.
  EXPECT_NEAR(static_cast<double>(rep.total_cycles), 21344.0, 21344.0 * 0.05);
}

TEST(CycleCounts, FfnPaperDesignPoint) {
  Accelerator acc;
  const RunReport rep = acc.time_ffn(64, 512, 2048);
  EXPECT_EQ(rep.total_cycles, 40516);
  EXPECT_NEAR(rep.microseconds(), 202.58, 0.01);
  EXPECT_NEAR(static_cast<double>(rep.total_cycles), 42099.0, 42099.0 * 0.05);
}

TEST(CycleCounts, SaStreamEqualsIdealMacCycles) {
  // Pure streaming cycles = total MACs / (64·64 PEs): 17,408 for MHA,
  // 32,768 for FFN at the paper design point.
  Accelerator acc;
  EXPECT_EQ(acc.time_mha(64, 64, 512, 8).sa_stream, 17408);
  EXPECT_EQ(acc.time_ffn(64, 512, 2048).sa_stream, 32768);
}

TEST(CycleCounts, MonotonicInSequenceLength) {
  Accelerator acc;
  Cycle prev_mha = 0, prev_ffn = 0;
  for (int s : {16, 32, 64, 128}) {
    const Cycle mha = acc.time_mha(s, s, 512, 8).total_cycles;
    const Cycle ffn = acc.time_ffn(s, 512, 2048).total_cycles;
    EXPECT_GT(mha, prev_mha) << "s=" << s;
    EXPECT_GT(ffn, prev_ffn) << "s=" << s;
    prev_mha = mha;
    prev_ffn = ffn;
  }
}

TEST(CycleCounts, BiggerModelsTakeLonger) {
  Accelerator acc;
  const Cycle base = acc.time_mha(64, 64, 512, 8).total_cycles;
  const Cycle big = acc.time_mha(64, 64, 1024, 16).total_cycles;
  EXPECT_GT(big, 2 * base);  // 4× the MACs, ≥ 2× the cycles
}

// --- Softmax overlap (Algorithm 1 line 6) ------------------------------------

TEST(SoftmaxOverlap, HiddenAtPaperDesignPoint) {
  Accelerator acc;
  const RunReport rep = acc.time_mha(64, 64, 512, 8);
  EXPECT_TRUE(rep.softmax_hidden);
  // Per softmax→AV edge: (AV's earliest start ignoring softmax) − (softmax
  // result) = V·W_V end + V₁ tile load − softmax end = 436 + 64.
  EXPECT_EQ(rep.softmax_slack_min, 500);
  EXPECT_EQ(rep.softmax_stall, 0);  // hidden means zero SA cycles stalled
}

TEST(SoftmaxOverlap, HiddenAcrossSequenceLengths) {
  Accelerator acc;
  for (int s : {8, 16, 32, 64, 128})
    EXPECT_TRUE(acc.time_mha(s, s, 512, 8).softmax_hidden) << "s=" << s;
}

TEST(SoftmaxOverlap, DisablingOverlapCostsCycles) {
  AcceleratorConfig cfg;
  cfg.overlap_softmax = false;
  const Cycle serial = Accelerator(cfg).time_mha(64, 64, 512, 8).total_cycles;
  const Cycle overlapped = Accelerator().time_mha(64, 64, 512, 8).total_cycles;
  EXPECT_GT(serial, overlapped);
  // Each head serializes its softmax: ≥ h × softmax duration of extra wait.
  EXPECT_GE(serial - overlapped, 8 * 100);
}

// --- LayerNorm strategies (Fig. 7) --------------------------------------------

TEST(LayerNormStrategies, TailOrderingMatchesFig7) {
  AcceleratorConfig cfg;
  const int d = 512;
  const Cycle two = LayerNormModule::tail_cycles(
      cfg, LayerNormStrategy::kStepOneAndTwo, d);
  const Cycle one =
      LayerNormModule::tail_cycles(cfg, LayerNormStrategy::kStepOne, d);
  const Cycle naive = LayerNormModule::tail_cycles(
      cfg, LayerNormStrategy::kStraightforward, d);
  EXPECT_LT(two, one);
  EXPECT_LT(one, naive);
  // Fig. 7: the straightforward way adds at least 2·64h cycles vs step 1+2.
  EXPECT_EQ(naive - two, 2 * d);
  EXPECT_EQ(one - two, d);
}

TEST(LayerNormStrategies, EndToEndLatencyFollowsStrategy) {
  Cycle prev = 0;
  for (auto strat : {LayerNormStrategy::kStepOneAndTwo,
                     LayerNormStrategy::kStepOne,
                     LayerNormStrategy::kStraightforward}) {
    AcceleratorConfig cfg;
    cfg.layernorm_strategy = strat;
    const Cycle total = Accelerator(cfg).time_mha(64, 64, 512, 8).total_cycles;
    EXPECT_GT(total, prev);
    prev = total;
  }
}

// --- Reports ------------------------------------------------------------------

TEST(RunReport, UtilizationBoundsAndAccounting) {
  Accelerator acc;
  for (const RunReport& rep :
       {acc.time_mha(64, 64, 512, 8), acc.time_ffn(64, 512, 2048)}) {
    EXPECT_GT(rep.sa_utilization(), 0.85);  // "the SA hardly stops"
    EXPECT_LE(rep.sa_utilization(), 1.0);
    EXPECT_GT(rep.sa_mac_utilization(), 0.75);
    EXPECT_LE(rep.sa_mac_utilization(), rep.sa_utilization());
    EXPECT_LE(rep.sa_busy, rep.total_cycles);
    EXPECT_GE(rep.exposed_weight_load, 0);
  }
}

TEST(RunReport, ExposedLoadsOnlyForDynamicOperandsPlusInitial) {
  Accelerator acc;
  // MHA: 2 dynamic stationary operands per head (K₁ᵀ, V₁) plus the run's
  // initial weight-tile load.
  EXPECT_EQ(acc.time_mha(64, 64, 512, 8).exposed_weight_load, 16 * 64 + 64);
  // FFN weights are all resident: only the initial load is exposed.
  EXPECT_EQ(acc.time_ffn(64, 512, 2048).exposed_weight_load, 64);
}

TEST(RunReport, AccumulatorSpillOnlyForDeepChains) {
  Accelerator acc;
  // FFN W2 ops accumulate 32 tiles -> 3 spills × 128 × 8 ops.
  EXPECT_EQ(acc.time_ffn(64, 512, 2048).accum_spill, 3 * 128 * 8);
  EXPECT_EQ(acc.time_mha(64, 64, 512, 8).accum_spill, 0);
}

TEST(RunReport, TimelineCoversAllModules) {
  const ModelConfig cfg = hw_config();
  Rng rng(5);
  const int s = 8;
  const Mask mask = no_mask(s, s);
  const auto qm = build_mha(cfg, rng, s, SoftmaxImpl::kHardware, mask);
  MatF q(s, cfg.d_model);
  fill_normal(q, rng, 0, 1);
  Accelerator acc;
  const auto result = acc.run_mha(qm, qm.quantize_q(q), qm.quantize_kv(q),
                                  mask);
  bool has_sa = false, has_sm = false, has_ln = false;
  for (const auto& m : result.report.timeline.modules()) {
    if (m.name() == "SA") has_sa = !m.intervals().empty();
    if (m.name() == "Softmax") has_sm = !m.intervals().empty();
    if (m.name() == "LayerNorm") has_ln = !m.intervals().empty();
  }
  EXPECT_TRUE(has_sa);
  EXPECT_TRUE(has_sm);
  EXPECT_TRUE(has_ln);
}

}  // namespace
}  // namespace tfacc
