// Tests for the fused cross-sublayer decode-step ledger (PR 5): legality of
// spliced schedules across sublayer seams (no SA/Softmax/LayerNorm
// double-booking, weight-tile single-residency respected by the prefetch
// port), the one-sublayer ≡ standalone-builder interval pin, the
// cold-load-collapse arithmetic, the serve-scheduler integration
// (bit-identical outputs, fewer cycles, smaller boundary stall), and the
// StreamReport model rebased on a two-invocation fused ledger.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/verifier.hpp"
#include "core/backend.hpp"
#include "nlp/synthetic.hpp"
#include "reference/weights.hpp"
#include "serve/scheduler.hpp"

namespace tfacc {
namespace {

AcceleratorConfig accel_config(bool interleave = true) {
  AcceleratorConfig cfg;
  cfg.interleave_decode = interleave;
  return cfg;
}

// The sublayer sequence the packed decode step issues for `blocks` decoder
// blocks: self MHA (appending this step's K/V rows), cross MHA (fully
// cached), FFN.
std::vector<SublayerPlan> decode_step_plan(const std::vector<int>& totals,
                                           int d_model, int num_heads,
                                           int d_ff, int blocks) {
  const int n = static_cast<int>(totals.size());
  std::vector<int> cross_totals(totals.size(), 9);
  std::vector<SublayerPlan> subs;
  for (int b = 0; b < blocks; ++b) {
    const std::string dec = "dec" + std::to_string(b);
    subs.push_back(SublayerPlan::mha_cached_batch(dec + ".self", totals,
                                                  d_model, num_heads, n));
    subs.push_back(SublayerPlan::mha_cached_batch(dec + ".cross",
                                                  cross_totals, d_model,
                                                  num_heads, 0));
    subs.push_back(SublayerPlan::ffn(dec + ".ffn", n, d_model, d_ff));
  }
  return subs;
}

std::vector<int> greedy_totals(int slots) {
  std::vector<int> totals;
  for (int r = 0; r < slots; ++r) totals.push_back(3 + (5 * r) % 11);
  return totals;
}

// --- Legality across sublayer seams ------------------------------------------

TEST(FusedAudit, DecodeStepLedgerIsLegalAcrossShapesAndPolicies) {
  for (const bool interleave : {true, false})
    for (const int slots : {1, 8, 16})
      for (const int heads : {1, 8})
        for (const int blocks : {1, 2}) {
          Timeline tl;
          const FusedRun fused = schedule_decode_step(
              accel_config(interleave), tl,
              decode_step_plan(greedy_totals(slots), heads * 64, heads,
                               4 * heads * 64, blocks));
          VerifyOptions opts;
          opts.program_order = !interleave;
          const VerifyResult res = verify_fused(fused, opts);
          EXPECT_TRUE(res.ok())
              << "slots=" << slots << " heads=" << heads << " blocks="
              << blocks << (interleave ? " greedy" : " program-order")
              << "\n" << res.to_string();
          ASSERT_EQ(fused.segments.size(),
                    static_cast<std::size_t>(3 * blocks));
        }
}

TEST(FusedAudit, UnchainedStreamLedgerIsLegal) {
  const SublayerPlan mha = SublayerPlan::mha("mha", 64, 64, 512, 8);
  const SublayerPlan ffn = SublayerPlan::ffn("ffn", 64, 512, 2048);
  for (const auto& subs :
       {std::vector<SublayerPlan>{mha, mha},
        std::vector<SublayerPlan>{ffn, ffn, ffn}}) {
    Timeline tl;
    const FusedRun fused =
        schedule_fused(accel_config(), tl, subs, /*chain=*/false,
                       IssuePolicy::kProgramOrder);
    VerifyOptions opts;
    opts.program_order = true;
    const VerifyResult res = verify_fused(fused, opts);
    EXPECT_TRUE(res.ok()) << res.to_string();
  }
}

TEST(FusedAudit, RejectsEmptyPlan) {
  Timeline tl;
  EXPECT_THROW(schedule_decode_step(accel_config(), tl, {}), CheckError);
}

// --- One-sublayer ≡ standalone builder ---------------------------------------

// A fused ledger of one sublayer must schedule every SA/Softmax/LayerNorm
// interval exactly where the standalone builder puts it: the explicit
// prefetch op on the WeightLoad port replaces the scheduler's implicit
// cold-load rule without moving anything. (The fused graph's op 0 is the
// prefetch; the remaining ops are in the standalone builder's order.)
void expect_one_sublayer_pin(const SublayerPlan& sub,
                             const ScheduledRun& standalone,
                             const Timeline& standalone_tl, bool interleave) {
  Timeline tl;
  const IssuePolicy policy = sub.kind == SublayerPlan::Kind::kMha
                                 ? IssuePolicy::kProgramOrder
                                 : (interleave ? IssuePolicy::kGreedy
                                               : IssuePolicy::kProgramOrder);
  const FusedRun fused =
      schedule_fused(accel_config(interleave), tl, {sub}, /*chain=*/true,
                     policy);
  VerifyOptions opts;
  opts.program_order = policy == IssuePolicy::kProgramOrder;
  const VerifyResult res = verify_fused(fused, opts);
  EXPECT_TRUE(res.ok()) << res.to_string();
  EXPECT_EQ(tl.end_time(), standalone_tl.end_time());
  ASSERT_EQ(fused.graph.size(), standalone.graph.size() + 1);
  EXPECT_EQ(fused.graph.ops()[0].resource, OpResource::kWeightLoad);
  for (int i = 0; i < standalone.graph.size(); ++i) {
    const auto fi = static_cast<std::size_t>(i + 1);
    const auto si = static_cast<std::size_t>(i);
    EXPECT_EQ(fused.stats.intervals[fi].start,
              standalone.stats.intervals[si].start)
        << standalone.graph.ops()[si].label;
    EXPECT_EQ(fused.stats.intervals[fi].end,
              standalone.stats.intervals[si].end)
        << standalone.graph.ops()[si].label;
  }
}

TEST(FusedDegenerate, OneSublayerMatchesStandaloneBatch) {
  for (const bool interleave : {true, false})
    for (const int project : {0, 8}) {
      Timeline tl;
      const ScheduledRun standalone = schedule_mha_cached_batch(
          accel_config(interleave), tl, greedy_totals(8), 64, 1, project);
      expect_one_sublayer_pin(
          SublayerPlan::mha_cached_batch("self", greedy_totals(8), 64, 1,
                                         project),
          standalone, tl, interleave);
    }
}

TEST(FusedDegenerate, OneSublayerMatchesStandaloneFfn) {
  Timeline tl;
  const ScheduledRun standalone =
      schedule_ffn(accel_config(), tl, 16, 512, 2048);
  expect_one_sublayer_pin(SublayerPlan::ffn("ffn", 16, 512, 2048),
                          standalone, tl, true);
}

TEST(FusedDegenerate, OneSublayerMatchesStandaloneMha) {
  Timeline tl;
  const ScheduledRun standalone =
      schedule_mha(accel_config(), tl, 64, 64, 512, 8);
  expect_one_sublayer_pin(SublayerPlan::mha("mha", 64, 64, 512, 8),
                          standalone, tl, true);
}

// --- Seam semantics ----------------------------------------------------------

// Chained fusion removes exactly the per-sublayer cold weight loads: each
// later sublayer's initial tile prefetches under the previous sublayer, so
// the fused total is the sum of standalone totals minus one weight load per
// seam. (Each sublayer's internal schedule is shift-invariant: it starts
// from an idle SA either way.)
TEST(FusedSeams, ColdLoadsCollapseToOne) {
  const AcceleratorConfig cfg = accel_config();
  Accelerator acc(cfg);
  const auto subs = decode_step_plan(greedy_totals(16), 64, 1, 256, 1);
  Cycle standalone_sum = 0;
  Cycle standalone_boundary = 0;
  for (const SublayerPlan& sub : subs) {
    const RunReport one = acc.time_fused({sub}, /*chain=*/true);
    standalone_sum += one.total_cycles;
    standalone_boundary += one.boundary_stall;
  }
  const RunReport fused = acc.time_fused(subs, /*chain=*/true);
  const Cycle seams = static_cast<Cycle>(subs.size()) - 1;
  EXPECT_EQ(fused.total_cycles,
            standalone_sum - seams * cfg.weight_load_cycles);
  EXPECT_EQ(fused.boundary_stall,
            standalone_boundary - seams * cfg.weight_load_cycles);
}

TEST(FusedSeams, PrefetchHidesUnderPreviousSublayer) {
  const AcceleratorConfig cfg = accel_config();
  Timeline tl;
  const auto subs = decode_step_plan(greedy_totals(16), 64, 1, 256, 2);
  const FusedRun fused = schedule_decode_step(cfg, tl, subs);

  // Segment accounting: the first seam is the ledger's cold load; every
  // later seam is exactly the previous sublayer's LayerNorm tail (the
  // prefetch is fully hidden, so sublayer k's SA starts the cycle its
  // chained input is ready).
  const Cycle ln_tail =
      LayerNormModule::tail_cycles(cfg, cfg.layernorm_strategy, 64);
  ASSERT_EQ(fused.segments.size(), subs.size());
  EXPECT_EQ(fused.segments[0].seam_stall, cfg.weight_load_cycles);
  Cycle seam_sum = fused.segments[0].seam_stall;
  for (std::size_t i = 1; i < fused.segments.size(); ++i) {
    EXPECT_EQ(fused.segments[i].seam_stall, ln_tail) << "seam " << i;
    EXPECT_EQ(fused.segments[i].sa_start, fused.segments[i - 1].sa_end +
                                              ln_tail)
        << "seam " << i;
    seam_sum += fused.segments[i].seam_stall;
  }
  EXPECT_EQ(fused.boundary_stall, seam_sum + ln_tail);  // + the final tail
}

TEST(FusedSeams, WeightTileSingleResidencyRespected) {
  Timeline tl;
  const auto subs = decode_step_plan(greedy_totals(8), 64, 1, 256, 2);
  const FusedRun fused = schedule_decode_step(accel_config(), tl, subs);

  // Every prefetch after the first is gated on the previous sublayer's
  // first SA op having consumed its tile (the buffer holds one pending
  // tile): its load starts only after that op ends, yet still completes
  // before its own sublayer's SA work begins (fully hidden).
  std::vector<std::size_t> prefetches;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(fused.graph.size()); ++i)
    if (fused.graph.ops()[i].resource == OpResource::kWeightLoad)
      prefetches.push_back(i);
  ASSERT_EQ(prefetches.size(), subs.size());
  for (std::size_t k = 1; k < prefetches.size(); ++k) {
    const Interval& load = fused.stats.intervals[prefetches[k]];
    const OpNode& node = fused.graph.ops()[prefetches[k]];
    ASSERT_EQ(node.deps.size(), 1u);  // the residency-release dep
    EXPECT_GE(load.start,
              fused.stats.result_ready[static_cast<std::size_t>(
                  node.deps[0])]);
    EXPECT_LE(load.end, fused.segments[k].sa_start) << "prefetch " << k;
  }
}

TEST(FusedSeams, SchedulesAreDeterministic) {
  const auto subs = decode_step_plan(greedy_totals(16), 512, 8, 2048, 2);
  Timeline a_tl, b_tl;
  const FusedRun a = schedule_decode_step(accel_config(), a_tl, subs);
  const FusedRun b = schedule_decode_step(accel_config(), b_tl, subs);
  ASSERT_EQ(a.stats.intervals.size(), b.stats.intervals.size());
  for (std::size_t i = 0; i < a.stats.intervals.size(); ++i) {
    EXPECT_EQ(a.stats.intervals[i].start, b.stats.intervals[i].start);
    EXPECT_EQ(a.stats.intervals[i].label, b.stats.intervals[i].label);
  }
  EXPECT_EQ(a.boundary_stall, b.boundary_stall);
}

// --- DecodeStepFuser ---------------------------------------------------------

TEST(DecodeStepFuser, LifecycleIsEnforced) {
  Accelerator acc;
  AcceleratorStats stats;
  DecodeStepFuser fuser(acc, &stats);
  EXPECT_FALSE(fuser.active());
  EXPECT_THROW(fuser.end_step(), CheckError);
  EXPECT_THROW(fuser.record_ffn(1, 64, 256), CheckError);
  fuser.begin_step();
  EXPECT_TRUE(fuser.active());
  EXPECT_THROW(fuser.begin_step(), CheckError);
  // A step in which no hook ran (e.g. serial fallback) charges nothing.
  const RunReport empty = fuser.end_step();
  EXPECT_EQ(empty.total_cycles, 0);
  EXPECT_EQ(stats.fused_steps, 0);

  fuser.begin_step();
  fuser.record_mha_cached_batch({5, 7}, 64, 1, 2);
  fuser.record_mha_cached_batch({9, 9}, 64, 1, 0);
  fuser.record_ffn(2, 64, 256);
  const RunReport step = fuser.end_step();
  EXPECT_GT(step.total_cycles, 0);
  EXPECT_EQ(stats.fused_steps, 1);
  EXPECT_EQ(stats.fused_cycles, step.total_cycles);
  EXPECT_EQ(stats.mha_runs, 2);
  EXPECT_EQ(stats.ffn_runs, 1);
  EXPECT_EQ(stats.total_cycles(), step.total_cycles);
  EXPECT_EQ(stats.boundary_stall_cycles, step.boundary_stall);
}

// --- Serve-scheduler integration ---------------------------------------------

ModelConfig hw_config() {
  ModelConfig cfg;
  cfg.name = "fused-hw";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 2;
  return cfg;
}

// The acceptance criterion at serve level: fusing the packed decode step
// changes no output bit on the accelerator backend, removes the
// per-sublayer cold loads (fewer makespan cycles, smaller boundary stall)
// and lifts SA utilization.
TEST(FusedServe, BitIdenticalAndFasterThanPerSublayerLedgers) {
  SyntheticTranslationTask task(24, 5, 8);
  Rng rng(121);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), task.vocab_size(), rng);
  Rng src_rng(11);
  std::vector<TokenSeq> sources;
  for (int i = 0; i < 12; ++i) sources.push_back(task.sample(src_rng).source);
  const std::vector<TokenSeq> calib = {{3, 4, 5}, {6, 7}};

  SchedulerConfig fused_cfg;
  fused_cfg.backend = ServeBackend::kAccelerator;
  fused_cfg.num_cards = 1;
  fused_cfg.slots_per_card = 8;
  fused_cfg.max_len = 12;
  SchedulerConfig split_cfg = fused_cfg;
  split_cfg.accel.fuse_decode_step = false;

  Scheduler fused(weights, calib, fused_cfg);
  Scheduler split(weights, calib, split_cfg);
  const ScheduleReport rf = fused.run(sources);
  const ScheduleReport rs = split.run(sources);

  EXPECT_EQ(rf.outputs, rs.outputs);  // timing model only, data untouched
  EXPECT_GT(rf.fused_steps(), 0l);
  EXPECT_EQ(rs.fused_steps(), 0l);
  EXPECT_LT(rf.makespan_cycles(), rs.makespan_cycles());
  EXPECT_LT(rf.boundary_stall_cycles(), rs.boundary_stall_cycles());
  EXPECT_GT(rf.sa_utilization(), rs.sa_utilization());
  EXPECT_GT(rf.modeled_sentences_per_second(),
            rs.modeled_sentences_per_second());
  // SA work is identical — only boundary idle disappears.
  EXPECT_EQ(rf.sa_busy_cycles(), rs.sa_busy_cycles());
}

TEST(FusedServe, RunsAreReproducible) {
  Rng rng(122);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), 20, rng);
  const std::vector<TokenSeq> calib = {{3, 4, 5}, {6, 7}};
  const std::vector<TokenSeq> sources = {{3, 4, 5, 6}, {7}, {5, 5, 6},
                                         {8, 9, 10}};
  SchedulerConfig cfg;
  cfg.backend = ServeBackend::kAccelerator;
  cfg.num_cards = 2;
  cfg.slots_per_card = 4;
  cfg.max_len = 10;
  Scheduler sched(weights, calib, cfg);
  const ScheduleReport a = sched.run(sources);
  const ScheduleReport b = sched.run(sources);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.makespan_cycles(), b.makespan_cycles());
  EXPECT_EQ(a.boundary_stall_cycles(), b.boundary_stall_cycles());
  EXPECT_EQ(a.fused_steps(), b.fused_steps());
}

// --- StreamReport rebased on the fused ledger --------------------------------

TEST(StreamRebased, MatchesTwoInvocationFusedLedger) {
  Accelerator acc;
  const auto check = [&](const SublayerPlan& sub,
                         const Accelerator::StreamReport& sr) {
    const RunReport one = acc.time_fused({sub}, /*chain=*/false);
    const RunReport two = acc.time_fused({sub, sub}, /*chain=*/false);
    EXPECT_EQ(sr.first_latency, one.total_cycles);
    EXPECT_EQ(sr.steady_interval, two.total_cycles - one.total_cycles);
    // The ledger is affine in the invocation count: a third run adds
    // exactly one more steady interval, so total_cycles(n) extrapolates.
    const RunReport three =
        acc.time_fused({sub, sub, sub}, /*chain=*/false);
    EXPECT_EQ(three.total_cycles, sr.total_cycles(3));
  };
  check(SublayerPlan::mha("mha", 64, 64, 512, 8),
        acc.stream_mha(64, 64, 512, 8));
  check(SublayerPlan::ffn("ffn", 64, 512, 2048),
        acc.stream_ffn(64, 512, 2048));
}

// The shapes the old analytic subtraction was weakest on: tiny runs where
// `total − weight_load − layernorm_busy` flirts with zero. The derived
// interval is positive by construction (run 2 occupies real SA time).
TEST(StreamRebased, TinyShapesYieldPositiveIntervals) {
  AcceleratorConfig cfg;
  cfg.layernorm_strategy = LayerNormStrategy::kStraightforward;
  const Accelerator acc(cfg);
  for (const int s : {1, 2}) {
    const auto mha = acc.stream_mha(s, s, 64, 1);
    EXPECT_GT(mha.steady_interval, 0) << "mha s=" << s;
    EXPECT_LT(mha.steady_interval, mha.first_latency);
    const auto ffn = acc.stream_ffn(s, 64, 256);
    EXPECT_GT(ffn.steady_interval, 0) << "ffn s=" << s;
    EXPECT_LT(ffn.steady_interval, ffn.first_latency);
  }
}

}  // namespace
}  // namespace tfacc
