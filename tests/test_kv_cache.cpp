// Equivalence suite for KV-cached incremental decode: the cached path must
// be *bit-identical* to full recompute for greedy and beam search across all
// three backends (FP32 reference, INT8 quantized, accelerator simulator) and
// through BatchRunner at several thread counts. Also pins the satellite
// fixes: positional encoding past 512 and the non-mutating Timeline lookup.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "core/backend.hpp"
#include "core/batch_runner.hpp"
#include "nlp/synthetic.hpp"
#include "quant/qtransformer.hpp"
#include "reference/transformer.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

// Multi-layer, multi-head micro model: exercises per-layer caches and
// per-head K/V blocks without the 64-wide hardware constraint.
ModelConfig micro_config() {
  ModelConfig cfg;
  cfg.name = "kv-micro";
  cfg.d_model = 32;
  cfg.d_ff = 128;
  cfg.num_heads = 2;
  cfg.head_dim = 16;
  cfg.num_encoder_layers = 2;
  cfg.num_decoder_layers = 2;
  return cfg;
}

// Hardware-compatible model (head_dim 64 = SA columns) for the quantized and
// accelerator backends.
ModelConfig hw_config() {
  ModelConfig cfg;
  cfg.name = "kv-hw";
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.num_heads = 1;
  cfg.head_dim = 64;
  cfg.num_encoder_layers = 1;
  cfg.num_decoder_layers = 2;
  return cfg;
}

std::vector<TokenSeq> test_sources() {
  return {{3, 4, 5, 6}, {7, 8, 9}, {10, 3, 11, 4, 12}, {5, 5, 6}};
}

// --- FP32 reference ----------------------------------------------------------

TEST(KvCacheReference, GreedyBitIdenticalToFullRecompute) {
  Rng rng(21);
  Transformer model(TransformerWeights::random(micro_config(), 20, rng));
  for (const TokenSeq& src : test_sources()) {
    EXPECT_EQ(model.translate_greedy(src, 16, DecodeMode::kKvCache),
              model.translate_greedy(src, 16, DecodeMode::kFullRecompute))
        << "src[0]=" << src[0];
  }
}

TEST(KvCacheReference, BeamBitIdenticalToFullRecompute) {
  Rng rng(22);
  Transformer model(TransformerWeights::random(micro_config(), 20, rng));
  Transformer::BeamConfig beam;
  beam.beam_size = 3;
  for (const TokenSeq& src : test_sources()) {
    EXPECT_EQ(model.translate_beam(src, 12, beam, DecodeMode::kKvCache),
              model.translate_beam(src, 12, beam,
                                   DecodeMode::kFullRecompute))
        << "src[0]=" << src[0];
  }
}

TEST(KvCacheReference, DecodeStepMatchesNextTokenLogitsBitwise) {
  Rng rng(23);
  Transformer model(TransformerWeights::random(micro_config(), 20, rng));
  const TokenSeq src{3, 4, 5};
  const MatF memory = model.encode(src);
  const int src_valid = static_cast<int>(src.size());

  DecodeState state = model.begin_decode(memory, src_valid);
  TokenSeq tgt{kBosId};
  for (int step = 0; step < 6; ++step) {
    const auto cached = model.decode_step(state, tgt.back());
    const auto full = model.next_token_logits(tgt, memory, src_valid);
    ASSERT_EQ(cached.size(), full.size());
    for (std::size_t i = 0; i < full.size(); ++i)
      EXPECT_EQ(cached[i], full[i]) << "step " << step << " logit " << i;
    tgt.push_back(3 + step);  // arbitrary forced continuation
  }
}

TEST(KvCacheReference, PaddedSourceMasksIdentically) {
  Rng rng(24);
  Transformer model(TransformerWeights::random(micro_config(), 20, rng));
  const TokenSeq padded{3, 4, 5, kPadId, kPadId};
  EXPECT_EQ(model.translate_greedy(padded, 12, DecodeMode::kKvCache),
            model.translate_greedy(padded, 12, DecodeMode::kFullRecompute));
}

// --- INT8 quantized backend --------------------------------------------------

struct QuantFixture {
  Transformer model;
  QuantizedTransformer qt;

  explicit QuantFixture(SoftmaxImpl impl = SoftmaxImpl::kHardware)
      : model(make_weights()),
        qt(QuantizedTransformer::build(model, {{3, 4, 5}, {6, 7}}, 12,
                                       impl)) {}

 private:
  static TransformerWeights make_weights() {
    Rng rng(31);
    return TransformerWeights::random(hw_config(), 20, rng);
  }
};

TEST(KvCacheQuantized, GreedyBitIdenticalToFullRecompute) {
  QuantFixture fx;
  fx.model.set_backend(fx.qt.backend());
  for (const TokenSeq& src : test_sources()) {
    EXPECT_EQ(fx.model.translate_greedy(src, 12, DecodeMode::kKvCache),
              fx.model.translate_greedy(src, 12,
                                        DecodeMode::kFullRecompute))
        << "src[0]=" << src[0];
  }
}

TEST(KvCacheQuantized, BeamBitIdenticalToFullRecompute) {
  QuantFixture fx;
  fx.model.set_backend(fx.qt.backend());
  Transformer::BeamConfig beam;
  beam.beam_size = 3;
  for (const TokenSeq& src : test_sources()) {
    EXPECT_EQ(fx.model.translate_beam(src, 10, beam, DecodeMode::kKvCache),
              fx.model.translate_beam(src, 10, beam,
                                      DecodeMode::kFullRecompute))
        << "src[0]=" << src[0];
  }
}

TEST(KvCacheQuantized, FloatExactSoftmaxAlsoBitIdentical) {
  QuantFixture fx(SoftmaxImpl::kFloatExact);
  fx.model.set_backend(fx.qt.backend());
  EXPECT_EQ(fx.model.translate_greedy({3, 4, 5, 6}, 12, DecodeMode::kKvCache),
            fx.model.translate_greedy({3, 4, 5, 6}, 12,
                                      DecodeMode::kFullRecompute));
}

TEST(KvCacheQuantized, ForwardCachedMatchesForwardRowwise) {
  QuantFixture fx;
  // Drive one quantized block directly: cached single-row queries against an
  // incrementally grown cache must reproduce the full batch forward rows.
  const MhaWeights& w = fx.model.weights().decoder_layers[0].self_mha;
  const MhaQuantized& qm = fx.qt.mha_for(w);
  Rng rng(41);
  MatF x(5, fx.model.weights().config.d_model);
  fill_normal(x, rng, 0.0f, 1.0f);
  const MatI8 q_all = qm.quantize_q(x);
  const MatI8 kv_all = qm.quantize_kv(x);
  const MatI8 full = qm.forward(q_all, kv_all, causal_mask(5));

  QuantKvCache cache = qm.make_cache();
  for (int t = 0; t < 5; ++t) {
    const MatI8 q_row = q_all.block(t, 0, 1, q_all.cols());
    qm.append_kv(kv_all.block(t, 0, 1, kv_all.cols()), cache);
    const MatI8 out = qm.forward_cached(q_row, cache, no_mask(1, t + 1));
    for (int c = 0; c < out.cols(); ++c)
      EXPECT_EQ(out(0, c), full(t, c)) << "row " << t << " col " << c;
  }
}

// --- Accelerator simulator backend ------------------------------------------

TEST(KvCacheAccelerator, GreedyAndBeamBitIdenticalToFullRecompute) {
  QuantFixture fx;
  Accelerator acc;
  AcceleratorStats stats;
  fx.model.set_backend(accelerator_backend(fx.qt, acc, &stats));
  Transformer::BeamConfig beam;
  beam.beam_size = 3;
  for (const TokenSeq& src : test_sources()) {
    EXPECT_EQ(fx.model.translate_greedy(src, 12, DecodeMode::kKvCache),
              fx.model.translate_greedy(src, 12,
                                        DecodeMode::kFullRecompute));
    EXPECT_EQ(fx.model.translate_beam(src, 10, beam, DecodeMode::kKvCache),
              fx.model.translate_beam(src, 10, beam,
                                      DecodeMode::kFullRecompute));
  }
  EXPECT_GT(stats.mha_runs, 0);
  EXPECT_GT(stats.mha_cycles, 0);
}

TEST(KvCacheAccelerator, AcceleratorAgreesWithQuantizedBackend) {
  QuantFixture fx;
  Accelerator acc;
  fx.model.set_backend(fx.qt.backend());
  std::vector<TokenSeq> quant_out;
  for (const TokenSeq& src : test_sources())
    quant_out.push_back(fx.model.translate_greedy(src, 12));
  fx.model.set_backend(accelerator_backend(fx.qt, acc, nullptr));
  for (std::size_t i = 0; i < test_sources().size(); ++i)
    EXPECT_EQ(fx.model.translate_greedy(test_sources()[i], 12),
              quant_out[i]);
}

TEST(KvCacheAccelerator, CachedDecodeCostsFewerModeledCycles) {
  QuantFixture fx;
  Accelerator acc;
  const TokenSeq src{3, 4, 5, 6, 7, 8};
  AcceleratorStats cached, naive;
  fx.model.set_backend(accelerator_backend(fx.qt, acc, &cached));
  fx.model.translate_greedy(src, 12, DecodeMode::kKvCache);
  fx.model.set_backend(accelerator_backend(fx.qt, acc, &naive));
  fx.model.translate_greedy(src, 12, DecodeMode::kFullRecompute);
  EXPECT_LT(cached.total_cycles(), naive.total_cycles());
}

// --- BatchRunner --------------------------------------------------------------

TEST(KvCacheBatchRunner, CachedFarmMatchesFullRecomputeAtAllThreadCounts) {
  SyntheticTranslationTask task(24, 5, 7);
  Rng rng(51);
  const TransformerWeights weights =
      TransformerWeights::random(hw_config(), task.vocab_size(), rng);
  std::vector<TokenSeq> calib, sources;
  for (int i = 0; i < 3; ++i) calib.push_back(task.sample(rng).source);
  for (int i = 0; i < 7; ++i) sources.push_back(task.sample(rng).source);
  const int max_len = task.max_len() + 2;

  BatchConfig naive_cfg;
  naive_cfg.num_cards = 1;
  naive_cfg.max_len = max_len;
  naive_cfg.decode = DecodeMode::kFullRecompute;
  BatchRunner naive(weights, calib, naive_cfg);
  const BatchReport baseline = naive.run(sources);

  for (const int cards : {1, 2, 4}) {
    BatchConfig cfg;
    cfg.num_cards = cards;
    cfg.max_len = max_len;
    BatchRunner runner(weights, calib, cfg);
    const BatchReport rep = runner.run(sources);
    ASSERT_EQ(rep.outputs.size(), baseline.outputs.size());
    for (std::size_t i = 0; i < rep.outputs.size(); ++i)
      EXPECT_EQ(rep.outputs[i], baseline.outputs[i])
          << cards << " cards, sentence " << i;
    EXPECT_LT(rep.total_cycles(), baseline.total_cycles()) << cards;
  }
}

// --- Backend-override safety --------------------------------------------------

TEST(KvCacheSafety, PartialMhaOverrideFallsBackToFullRecompute) {
  Rng rng(71);
  Transformer model(TransformerWeights::random(micro_config(), 20, rng));
  const TokenSeq src{3, 4, 5};
  const TokenSeq base = model.translate_greedy(src, 8);

  // Overriding only `mha` (the capturing/instrumentation pattern) must not
  // let the cached path silently bypass the override: the decode loop falls
  // back to full recompute, where every MHA call goes through it.
  int mha_calls = 0;
  ResBlockBackend counting;
  counting.mha = [&mha_calls](const MatF& q, const MatF& kv,
                              const MhaWeights& w, const Mask& m) {
    ++mha_calls;
    return mha_resblock(q, kv, w, m);
  };
  EXPECT_FALSE(counting.supports_cached_decode());
  model.set_backend(counting);
  EXPECT_EQ(model.translate_greedy(src, 8), base);
  // Encoder layers alone would give num_encoder_layers calls; the decoder
  // (self + cross per layer per step) pushes well past that — proof every
  // decoder MHA went through the override.
  EXPECT_GT(mha_calls, 2 * micro_config().num_encoder_layers);

  // Overriding the cached hooks alongside mha is trusted again.
  ResBlockBackend full;
  EXPECT_TRUE(full.supports_cached_decode());
  full.mha = [](const MatF& q, const MatF& kv, const MhaWeights& w,
                const Mask& m) { return mha_resblock(q, kv, w, m); };
  EXPECT_FALSE(full.supports_cached_decode());
  full.mha_cached = [](const MatF& q, MhaCache& cache, const MhaWeights& w,
                       const Mask& m, bool append) {
    return ref_mha_cached(q, cache, w, m, append);
  };
  EXPECT_TRUE(full.supports_cached_decode());
}

// --- Satellite regressions ----------------------------------------------------

TEST(LongSequence, EmbedGrowsPositionalTablePast512) {
  Rng rng(61);
  Transformer model(TransformerWeights::random(micro_config(), 20, rng));
  TokenSeq long_tgt(600, 3);
  const MatF y = model.embed(long_tgt, model.weights().tgt_embedding);
  EXPECT_EQ(y.rows(), 600);
  // Rows below the old cap are unchanged by the regrowth.
  const MatF pe = positional_encoding(600, micro_config().d_model);
  TokenSeq short_tgt(4, 3);
  const MatF y2 = model.embed(short_tgt, model.weights().tgt_embedding);
  for (int c = 0; c < y2.cols(); ++c) EXPECT_EQ(y2(3, c), y(3, c));
}

TEST(LongSequence, IncrementalDecodePast512Positions) {
  Rng rng(62);
  Transformer model(TransformerWeights::random(micro_config(), 20, rng));
  const MatF memory = model.encode({3, 4, 5});
  DecodeState state = model.begin_decode(memory, 3);
  // Force 520 steps; before the fix this threw "sequence too long" at 512.
  std::vector<float> logits;
  for (int step = 0; step < 520; ++step)
    logits = model.decode_step(state, 3 + (step % 7));
  EXPECT_EQ(state.steps, 520);
  for (float v : logits) EXPECT_TRUE(std::isfinite(v));
}

TEST(TimelineReport, FfnRunDoesNotGrowEmptySoftmaxLedger) {
  QuantFixture fx;
  Accelerator acc;
  const FfnWeights& w = fx.model.weights().decoder_layers[0].ffn;
  const FfnQuantized& qf = fx.qt.ffn_for(w);
  MatI8 x(3, fx.model.weights().config.d_model);
  const auto result = acc.run_ffn(qf, x);
  EXPECT_EQ(result.report.softmax_busy, 0);
  // The report must not have materialized a "Softmax" module ledger.
  for (const auto& m : result.report.timeline.modules())
    EXPECT_NE(m.name(), "Softmax");
  EXPECT_EQ(result.report.timeline.find("Softmax"), nullptr);
  EXPECT_NE(result.report.timeline.find("SA"), nullptr);
}

}  // namespace
}  // namespace tfacc
