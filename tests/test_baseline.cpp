// Tests for the A³-style approximate-attention baseline and the Gantt
// renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/a3.hpp"
#include "sim/gantt.hpp"
#include "tensor/compare.hpp"
#include "tensor/ops.hpp"

namespace tfacc {
namespace {

TEST(A3, LargeBudgetConvergesToExactAttention) {
  Rng rng(1);
  const int s = 16, d = 8;
  MatF q(s, d), k(s, d), v(s, d);
  fill_normal(q, rng, 0, 1);
  fill_normal(k, rng, 0, 1);
  fill_normal(v, rng, 0, 1);
  const Mask mask = no_mask(s, s);
  A3Config cfg;
  cfg.search_iterations = s * d;  // enough to touch every key
  const A3Result res = a3_attention(q, k, v, mask, cfg);
  EXPECT_EQ(res.mean_candidates, static_cast<double>(s));
  EXPECT_LT(max_abs_diff(res.output, attention_head(q, k, v, mask)), 1e-4);
  EXPECT_NEAR(res.score_macs_saved, 0.0, 1e-9);
}

TEST(A3, FidelityImprovesWithBudget) {
  Rng rng(2);
  const int s = 32, d = 16;
  MatF q(s, d), k(s, d), v(s, d);
  fill_normal(q, rng, 0, 1);
  fill_normal(k, rng, 0, 1);
  fill_normal(v, rng, 0, 1);
  const Mask mask = no_mask(s, s);
  const MatF exact = attention_head(q, k, v, mask);
  double prev = -1.0;
  for (int iters : {4, 32, 512}) {
    A3Config cfg;
    cfg.search_iterations = iters;
    const double cos =
        cosine_similarity(exact, a3_attention(q, k, v, mask, cfg).output);
    EXPECT_GE(cos, prev - 0.02) << iters;  // near-monotone in budget
    prev = cos;
  }
  EXPECT_GT(prev, 0.999);
}

TEST(A3, SmallBudgetSkipsMostScoreMacs) {
  Rng rng(3);
  const int s = 64, d = 64;
  MatF q(s, d), k(s, d), v(s, d);
  fill_normal(q, rng, 0, 1);
  fill_normal(k, rng, 0, 1);
  fill_normal(v, rng, 0, 1);
  A3Config cfg;
  cfg.search_iterations = 8;
  const A3Result res = a3_attention(q, k, v, no_mask(s, s), cfg);
  EXPECT_LE(res.mean_candidates, 8.0);
  EXPECT_GT(res.score_macs_saved, 0.85);
}

TEST(A3, MaskedKeysAreNeverCandidates) {
  Rng rng(4);
  const int s = 12, d = 8;
  MatF x(s, d), k(s, d), v(s, d);
  fill_normal(x, rng, 0, 1);
  fill_normal(k, rng, 0, 1);
  fill_normal(v, rng, 0, 1);
  const Mask mask = causal_mask(s);
  A3Config cfg;
  cfg.search_iterations = s * d;
  const A3Result res = a3_attention(x, k, v, mask, cfg);
  const MatF exact = attention_head(x, k, v, mask);
  // Row 0 attends only to key 0 in both.
  for (int c = 0; c < d; ++c) EXPECT_NEAR(res.output(0, c), v(0, c), 1e-4);
  EXPECT_LT(max_abs_diff(res.output, exact), 1e-4);
}

TEST(A3, FullyMaskedRowYieldsZeros) {
  MatF q(1, 4), k(2, 4), v(2, 4);
  q.fill(1.0f);
  k.fill(1.0f);
  v.fill(5.0f);
  Mask mask(1, 2);
  mask(0, 0) = mask(0, 1) = 1;
  const A3Result res = a3_attention(q, k, v, mask, A3Config{});
  EXPECT_EQ(res.output(0, 0), 0.0f);
  EXPECT_EQ(res.mean_candidates, 0.0);
}

TEST(A3, CycleModelScalesWithBudgetAndRows) {
  A3Config cfg;
  cfg.search_iterations = 32;
  const auto base = a3_attention_cycles(64, 64, 64, 16.0, cfg);
  EXPECT_GT(a3_attention_cycles(128, 64, 64, 16.0, cfg), base);
  cfg.search_iterations = 64;
  EXPECT_GT(a3_attention_cycles(64, 64, 64, 16.0, cfg), base);
  A3Config bad;
  bad.search_iterations = 0;
  EXPECT_THROW(bad.validate(), CheckError);
}

TEST(Gantt, RendersBusyAndIdleColumns) {
  Timeline tl;
  tl.module("SA").reserve(0, 50, "a");
  tl.module("LayerNorm").reserve(50, 50, "b");
  std::ostringstream os;
  render_gantt(tl, os, 10);
  const std::string text = os.str();
  EXPECT_NE(text.find("SA"), std::string::npos);
  EXPECT_NE(text.find("LayerNorm"), std::string::npos);
  // SA busy in the first half, idle in the second; LayerNorm mirrored.
  EXPECT_NE(text.find("#####"), std::string::npos);
  EXPECT_NE(text.find("....."), std::string::npos);
}

TEST(Gantt, EmptyTimelineHandled) {
  Timeline tl;
  std::ostringstream os;
  render_gantt(tl, os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace tfacc
