// Tests for the typed schedule verifier (PR 7): one tampered-schedule test
// per diagnostic code asserting the EXACT code fires, positive sweeps over
// every builder, canonical-hash determinism/sensitivity, the structured
// Diagnostic fields, the audit_schedule() compat shim, and the
// AcceleratorConfig::verify_schedules hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "core/accelerator.hpp"
#include "core/schedules.hpp"

namespace tfacc {
namespace {

AcceleratorConfig accel_config(bool interleave = true) {
  AcceleratorConfig cfg;
  cfg.interleave_decode = interleave;
  return cfg;
}

bool has_code(const VerifyResult& res, DiagCode code) {
  return std::any_of(res.diags.begin(), res.diags.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

std::vector<int> greedy_totals(int slots) {
  std::vector<int> totals;
  for (int r = 0; r < slots; ++r) totals.push_back(3 + (5 * r) % 11);
  return totals;
}

std::vector<SublayerPlan> decode_plans(const std::vector<int>& totals,
                                       int d_model, int num_heads, int d_ff,
                                       int blocks) {
  const int slots = static_cast<int>(totals.size());
  std::vector<SublayerPlan> subs;
  for (int b = 0; b < blocks; ++b) {
    const std::string p = "dec" + std::to_string(b);
    subs.push_back(SublayerPlan::mha_cached_batch(p + ".self", totals, d_model,
                                                  num_heads, slots));
    subs.push_back(SublayerPlan::mha_cached_batch(p + ".cross", totals,
                                                  d_model, num_heads, 0));
    subs.push_back(SublayerPlan::ffn(p + ".ffn", slots, d_model, d_ff));
  }
  return subs;
}

/// Re-point an op's interval to [start, start + duration) keeping the
/// result-time bookkeeping consistent, so only the targeted invariant
/// breaks.
void slide_op(const OpGraph& g, ScheduleStats& st, std::size_t i,
              Cycle start) {
  const Cycle len = st.intervals[i].duration();
  st.intervals[i].start = start;
  st.intervals[i].end = start + len;
  st.result_ready[i] =
      st.intervals[i].end + g.ops()[i].result_latency;
}

// --- Positive sweeps ---------------------------------------------------------

TEST(Verifier, CleanBuildersVerifyAcrossPoliciesAndShapes) {
  for (const bool interleave : {true, false}) {
    const AcceleratorConfig cfg = accel_config(interleave);
    {
      Timeline tl;
      const ScheduledRun r = schedule_mha(cfg, tl, 64, 64, 512, 8);
      VerifyOptions opts;
      opts.program_order = true;  // Algorithm 1 is always pinned
      EXPECT_TRUE(verify_schedule(r.graph, r.stats, opts).ok());
    }
    {
      Timeline tl;
      const ScheduledRun r = schedule_ffn(cfg, tl, 64, 512, 2048);
      EXPECT_TRUE(verify_schedule(r.graph, r.stats).ok());
    }
    {
      Timeline tl;
      const ScheduledRun r = schedule_mha_cached(cfg, tl, 1, 64, 512, 8, 1);
      VerifyOptions opts;
      opts.program_order = cached_policy(cfg) == IssuePolicy::kProgramOrder;
      EXPECT_TRUE(verify_schedule(r.graph, r.stats, opts).ok());
    }
    for (const int slots : {1, 8, 16}) {
      Timeline tl;
      const ScheduledRun r = schedule_mha_cached_batch(
          cfg, tl, greedy_totals(slots), 512, 8, slots);
      VerifyOptions opts;
      opts.program_order = cached_policy(cfg) == IssuePolicy::kProgramOrder;
      EXPECT_TRUE(verify_schedule(r.graph, r.stats, opts).ok())
          << "slots=" << slots;
    }
    {
      Timeline tl;
      const FusedRun fused = schedule_decode_step(
          cfg, tl, decode_plans(greedy_totals(8), 128, 2, 512, 2));
      VerifyOptions opts;
      opts.program_order = cached_policy(cfg) == IssuePolicy::kProgramOrder;
      EXPECT_TRUE(verify_fused(fused, opts).ok());
    }
  }
}

// --- The canonical determinism hash ------------------------------------------

TEST(LedgerHash, IdenticalAcrossRebuildsOfTheSameShapes) {
  Timeline a_tl, b_tl;
  const ScheduledRun a = schedule_mha_cached_batch(
      accel_config(), a_tl, greedy_totals(16), 512, 8, 16);
  const ScheduledRun b = schedule_mha_cached_batch(
      accel_config(), b_tl, greedy_totals(16), 512, 8, 16);
  EXPECT_EQ(ledger_hash(a.graph, a.stats), ledger_hash(b.graph, b.stats));
  EXPECT_NE(ledger_hash(a.graph, a.stats), 0u);
}

TEST(LedgerHash, AnyPlacementShiftChangesTheHash) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  const std::uint64_t before = ledger_hash(run.graph, run.stats);
  slide_op(run.graph, run.stats, run.stats.intervals.size() / 2,
           run.stats.intervals[run.stats.intervals.size() / 2].start + 1);
  EXPECT_NE(before, ledger_hash(run.graph, run.stats));
}

// --- One tampered-schedule test per diagnostic code --------------------------

TEST(TamperedSchedule, MissingIntervalsFireSchedCoverage) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  run.stats.intervals.pop_back();
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  EXPECT_TRUE(has_code(res, DiagCode::kCoverage));
}

TEST(TamperedSchedule, StretchedIntervalFiresSchedDuration) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  run.stats.intervals.back().end += 7;
  run.stats.result_ready.back() += 7;  // keep SCHED-RESULT out of the way
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  EXPECT_TRUE(has_code(res, DiagCode::kDuration));
}

TEST(TamperedSchedule, InconsistentResultTimeFiresSchedResult) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  run.stats.result_ready.back() += 1;
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  EXPECT_TRUE(has_code(res, DiagCode::kResultTime));
}

TEST(TamperedSchedule, OpOutrunningItsProducerFiresSchedDep) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  ASSERT_TRUE(verify_schedule(run.graph, run.stats).ok());
  // The last op (the LayerNorm tail) depends on every W2 block: cycle 0 is
  // long before any of them finished.
  slide_op(run.graph, run.stats, run.stats.intervals.size() - 1, 0);
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  EXPECT_TRUE(has_code(res, DiagCode::kDependency));
}

TEST(TamperedSchedule, OutrunningTheStationaryLoadFiresSchedWload) {
  // d's stationary operand is produced by k: d may start no earlier than
  // k's result plus the tile load. Sliding d to k.end + 10 (< +64) breaks
  // exactly that invariant — no data dep, no overlap, no cold load.
  OpGraph g;
  const int k = g.add_sa({10, 10, 0}, {}, OpNode::kStaticWeight, "k");
  const int d = g.add_sa({10, 10, 0}, {}, k, "d");
  Timeline tl;
  ScheduleStats st = schedule_ops(g, 64, IssuePolicy::kGreedy, tl);
  ASSERT_TRUE(verify_schedule(g, st).ok());
  slide_op(g, st, static_cast<std::size_t>(d),
           st.intervals[static_cast<std::size_t>(k)].end + 10);
  const VerifyResult res = verify_schedule(g, st);
  EXPECT_TRUE(has_code(res, DiagCode::kStationaryLoad));
  EXPECT_FALSE(has_code(res, DiagCode::kDependency));
}

TEST(TamperedSchedule, SkippingTheColdLoadFiresSchedCold) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  // The first SA op has no deps and static weights; sliding it to cycle 0
  // creates no dep violation or overlap — only the skipped 64-cycle load.
  ASSERT_EQ(run.stats.intervals.front().start,
            accel_config().weight_load_cycles);
  slide_op(run.graph, run.stats, 0, 0);
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  EXPECT_TRUE(has_code(res, DiagCode::kColdLoad));
  EXPECT_FALSE(has_code(res, DiagCode::kDependency));
}

TEST(TamperedSchedule, DoubleBookedResourceFiresSchedOverlap) {
  // Two independent equal-shape SA ops stacked onto the same cycles: the
  // only broken invariant is single occupancy.
  OpGraph g;
  g.add_sa({10, 10, 0}, {}, OpNode::kStaticWeight, "a");
  const int b = g.add_sa({10, 10, 0}, {}, OpNode::kStaticWeight, "b");
  Timeline tl;
  ScheduleStats st = schedule_ops(g, 64, IssuePolicy::kGreedy, tl);
  ASSERT_TRUE(verify_schedule(g, st).ok());
  slide_op(g, st, static_cast<std::size_t>(b), st.intervals[0].start);
  const VerifyResult res = verify_schedule(g, st);
  EXPECT_TRUE(has_code(res, DiagCode::kOverlap));
  EXPECT_FALSE(has_code(res, DiagCode::kColdLoad));
}

TEST(TamperedSchedule, BrokenPrefetchChainFiresSchedChain) {
  // A fused decode step carries one WeightLoad prefetch per sublayer
  // boundary. Yanking one load back to cycle 0 makes it start while an
  // earlier tile still sits unconsumed in the single-residency buffer.
  Timeline tl;
  FusedRun run = schedule_decode_step(
      accel_config(), tl, decode_plans(greedy_totals(8), 128, 2, 512, 2));
  ASSERT_TRUE(verify_fused(run).ok());
  std::vector<std::size_t> loads;
  for (std::size_t i = 0; i < run.graph.ops().size(); ++i)
    if (run.graph.ops()[i].resource == OpResource::kWeightLoad)
      loads.push_back(i);
  ASSERT_GE(loads.size(), 2u);
  slide_op(run.graph, run.stats, loads.back(), 0);
  const VerifyResult res = verify_fused(run);
  EXPECT_TRUE(has_code(res, DiagCode::kPrefetchChain));
}

TEST(TamperedSchedule, GreedyInterleavingUnderThePinFiresSchedOrder) {
  // A greedy-built packed schedule genuinely reorders ops (that is the PR 4
  // win); verifying it against the program-order pin must object. The same
  // graph built in program order verifies clean under the pin.
  Timeline greedy_tl;
  const ScheduledRun greedy = schedule_mha_cached_batch(
      accel_config(true), greedy_tl, greedy_totals(16), 64, 1, 16);
  VerifyOptions pin;
  pin.program_order = true;
  EXPECT_TRUE(has_code(verify_schedule(greedy.graph, greedy.stats, pin),
                       DiagCode::kProgramOrder));

  Timeline program_tl;
  const ScheduledRun program = schedule_mha_cached_batch(
      accel_config(false), program_tl, greedy_totals(16), 64, 1, 16);
  EXPECT_TRUE(verify_schedule(program.graph, program.stats, pin).ok());
}

TEST(TamperedSchedule, InterleavedChainedLanesFireSchedLane) {
  // The decode lane chains its sublayers through the residual stream:
  // faking segment overlap inside that one lane must trip the lane rule.
  Timeline tl;
  FusedRun run = schedule_decode_step(
      accel_config(), tl, decode_plans(greedy_totals(8), 128, 2, 512, 1));
  ASSERT_TRUE(verify_fused(run).ok());
  ASSERT_GE(run.segments.size(), 2u);
  ASSERT_EQ(run.segments[0].lane, run.segments[1].lane);
  run.segments[1].sa_start = run.segments[0].sa_start;
  const VerifyResult res = verify_fused(run);
  EXPECT_TRUE(has_code(res, DiagCode::kLaneInterleave));
}

TEST(TamperedSchedule, WrongExpectedHashFiresSchedHash) {
  Timeline tl;
  const ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  VerifyOptions opts;
  opts.expect_hash = ledger_hash(run.graph, run.stats) ^ 0x5aa5u;
  const VerifyResult res = verify_schedule(run.graph, run.stats, opts);
  EXPECT_TRUE(has_code(res, DiagCode::kHashMismatch));
  opts.expect_hash ^= 0x5aa5u;
  EXPECT_TRUE(verify_schedule(run.graph, run.stats, opts).ok());
}

// --- Structured diagnostics --------------------------------------------------

TEST(Diagnostics, CarryOpIdsResourceAndCycleInterval) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  const std::size_t last = run.stats.intervals.size() - 1;
  slide_op(run.graph, run.stats, last, 0);
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  ASSERT_FALSE(res.diags.empty());
  const auto it =
      std::find_if(res.diags.begin(), res.diags.end(), [](const Diagnostic& d) {
        return d.code == DiagCode::kDependency;
      });
  ASSERT_NE(it, res.diags.end());
  EXPECT_EQ(it->op, static_cast<int>(last));
  EXPECT_GE(it->other, 0);  // the outrun producer
  EXPECT_EQ(it->begin, 0);
  // The formatted message names the code, op, resource, and interval.
  EXPECT_NE(it->message.find("[SCHED-DEP]"), std::string::npos);
  EXPECT_NE(it->message.find("op " + std::to_string(last)), std::string::npos);
  EXPECT_NE(it->message.find(op_resource_name(it->resource)),
            std::string::npos);
  EXPECT_NE(it->message.find("[0,"), std::string::npos);
}

TEST(Diagnostics, StableCodeNamesNeverChange) {
  EXPECT_STREQ(diag_code_name(DiagCode::kCoverage), "SCHED-COVERAGE");
  EXPECT_STREQ(diag_code_name(DiagCode::kDuration), "SCHED-DURATION");
  EXPECT_STREQ(diag_code_name(DiagCode::kResultTime), "SCHED-RESULT");
  EXPECT_STREQ(diag_code_name(DiagCode::kDependency), "SCHED-DEP");
  EXPECT_STREQ(diag_code_name(DiagCode::kStationaryLoad), "SCHED-WLOAD");
  EXPECT_STREQ(diag_code_name(DiagCode::kColdLoad), "SCHED-COLD");
  EXPECT_STREQ(diag_code_name(DiagCode::kOverlap), "SCHED-OVERLAP");
  EXPECT_STREQ(diag_code_name(DiagCode::kPrefetchChain), "SCHED-CHAIN");
  EXPECT_STREQ(diag_code_name(DiagCode::kProgramOrder), "SCHED-ORDER");
  EXPECT_STREQ(diag_code_name(DiagCode::kLaneInterleave), "SCHED-LANE");
  EXPECT_STREQ(diag_code_name(DiagCode::kHashMismatch), "SCHED-HASH");
}

// --- audit_schedule() compat shim --------------------------------------------

TEST(AuditShim, EmptyOnLegalFirstDiagnosticOnTampered) {
  Timeline tl;
  ScheduledRun run = schedule_ffn(accel_config(), tl, 8, 64, 256);
  EXPECT_EQ(audit_schedule(run.graph, run.stats), "");
  slide_op(run.graph, run.stats, run.stats.intervals.size() - 1, 0);
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  ASSERT_FALSE(res.diags.empty());
  EXPECT_EQ(audit_schedule(run.graph, run.stats), res.diags.front().message);
}

// --- The verify_schedules accelerator knob -----------------------------------

TEST(VerifyKnob, ParanoidAcceleratorVerifiesEveryLedgerItBuilds) {
  AcceleratorConfig cfg;
  cfg.verify_schedules = true;
  const Accelerator acc(cfg);
  EXPECT_NO_THROW(acc.time_mha(64, 64, 512, 8));
  EXPECT_NO_THROW(acc.time_ffn(64, 512, 2048));
  EXPECT_NO_THROW(acc.time_mha_cached(1, 64, 512, 8, 1));
  std::vector<FusedLane> lanes;
  lanes.push_back(FusedLane{decode_plans(greedy_totals(8), 128, 2, 512, 1),
                            false});
  EXPECT_NO_THROW(acc.time_step(lanes));
}

}  // namespace
}  // namespace tfacc
