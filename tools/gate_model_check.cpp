// gate_model_check — exhaustive AdmissionGate protocol checker (PR 10).
//
// Companion to schedule_lint: where that tool verifies the *schedules* the
// builders emit, this one verifies the *concurrency protocol* that orders
// them. It sweeps a grid of small farm shapes (cards x requests x slots,
// both admission-key flavors) and, for each, explores EVERY interleaving
// of gate operations with the memoized DFS in analysis/gate_model.hpp,
// asserting the PR 9 reservation invariants: pops resolve in global
// (key, id) order, no reachable deadlock, no lost or duplicated grant at
// quiescence, and one unique terminal state (determinism).
//
//   gate_model_check [--grid=small|full] [--verbose]
//     exit 0: every config explored exhaustively with zero diagnostics
//     exit 1: at least one diagnostic (printed with stable GATE-* codes)
//     exit 2: usage error
//
//   gate_model_check --tamper
//     Self-test: seeds each protocol bug in GateTamper and exits 1 iff
//     every one is caught with exactly its documented code — registered
//     in ctest with WILL_FAIL so CI proves the wall can actually fail.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/gate_model.hpp"

namespace {

using namespace tfacc;

struct Lint {
  int configs = 0;
  int failures = 0;
  bool verbose = false;
};

std::string config_name(const GateModelConfig& cfg) {
  std::string name = "cards=" + std::to_string(cfg.num_cards) +
                     " reqs=" + std::to_string(cfg.num_requests) +
                     " slots=" + std::to_string(cfg.slots_per_card) +
                     (cfg.proxy_keys ? " [proxy-keys]" : " [accel-keys]");
  if (cfg.tamper != GateTamper::kNone)
    name += std::string(" tamper=") + gate_tamper_name(cfg.tamper);
  return name;
}

void lint_config(Lint& lint, const GateModelConfig& cfg) {
  ++lint.configs;
  const GateModelResult res = check_gate_model(cfg);
  if (!res.ok()) {
    ++lint.failures;
    std::fprintf(stderr, "FAIL %s\n%s\n", config_name(cfg).c_str(),
                 res.to_string().c_str());
    return;
  }
  if (lint.verbose)
    std::printf("ok   %-44s %s\n", config_name(cfg).c_str(),
                res.to_string().c_str());
}

void sweep(Lint& lint, bool full) {
  const int max_cards = full ? 4 : 3;
  const int max_reqs = full ? 4 : 3;
  const int max_slots = full ? 4 : 3;
  for (int cards = 1; cards <= max_cards; ++cards)
    for (int reqs = 0; reqs <= max_reqs; ++reqs)
      for (int slots = 1; slots <= max_slots; ++slots)
        for (const bool proxy : {false, true}) {
          GateModelConfig cfg;
          cfg.num_cards = cards;
          cfg.num_requests = reqs;
          cfg.slots_per_card = slots;
          cfg.proxy_keys = proxy;
          lint_config(lint, cfg);
        }
}

/// The tamper grid: each seeded bug with the (documented) code that must
/// catch it, on a shape where the bug is reachable. frozen-key needs a
/// reservation posted mid-drain, after compute advanced the live clock
/// past the frozen step-top snapshot.
struct TamperCase {
  GateTamper tamper;
  GateDiagCode expect;
  int cards, reqs, slots;
};

constexpr TamperCase kTamperCases[] = {
    {GateTamper::kFrozenKey, GateDiagCode::kKey, 2, 4, 3},
    {GateTamper::kLostUnpark, GateDiagCode::kDeadlock, 2, 2, 1},
    {GateTamper::kDoubleGrant, GateDiagCode::kDup, 1, 2, 3},
    {GateTamper::kDropGrant, GateDiagCode::kLost, 2, 2, 2},
    {GateTamper::kNonMinGrant, GateDiagCode::kOrder, 2, 3, 2},
};

/// Returns true iff every seeded bug was caught with its exact code.
bool tamper_selftest() {
  bool all_caught = true;
  for (const TamperCase& tc : kTamperCases) {
    GateModelConfig cfg;
    cfg.num_cards = tc.cards;
    cfg.num_requests = tc.reqs;
    cfg.slots_per_card = tc.slots;
    cfg.tamper = tc.tamper;
    const GateModelResult res = check_gate_model(cfg);
    const bool caught = !res.diagnostics.empty() && !res.truncated &&
                        res.diagnostics.front().code == tc.expect;
    std::fprintf(stderr, "tamper %-14s -> %s (want %s): %s\n",
                 gate_tamper_name(tc.tamper),
                 res.diagnostics.empty()
                     ? "no diagnostic"
                     : gate_diag_code_name(res.diagnostics.front().code),
                 gate_diag_code_name(tc.expect),
                 caught ? "caught" : "MISSED");
    if (!caught) all_caught = false;
  }
  return all_caught;
}

}  // namespace

int main(int argc, char** argv) {
  bool tamper = false;
  bool full = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tamper") == 0) {
      tamper = true;
    } else if (std::strcmp(argv[i], "--grid=small") == 0) {
      full = false;
    } else if (std::strcmp(argv[i], "--grid=full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: gate_model_check [--grid=small|full] [--verbose]\n"
                   "       gate_model_check --tamper\n");
      return 2;
    }
  }

  if (tamper) {
    // WILL_FAIL semantics: exit 1 when the checker caught every seeded
    // bug with its precise code (the expected outcome), 0 otherwise.
    if (tamper_selftest()) {
      std::fprintf(stderr,
                   "tamper self-test: every seeded protocol bug caught\n");
      return 1;
    }
    std::fprintf(stderr, "tamper self-test: a seeded bug went UNDETECTED\n");
    return 0;
  }

  Lint lint;
  lint.verbose = verbose;
  sweep(lint, full);
  if (lint.failures > 0) {
    std::fprintf(stderr, "gate_model_check: %d/%d configs FAILED\n",
                 lint.failures, lint.configs);
    return 1;
  }
  std::printf("gate_model_check: %d configs explored exhaustively, clean\n",
              lint.configs);
  return 0;
}
