// schedule_lint — CI gate over every schedule builder (PR 7).
//
// Treats each builder as a program generator: sweeps a grid of shapes and
// knob combinations (slot counts 1/8/16, greedy vs program-order issue,
// prefill chunk sizes, fuse_decode_step / pack_prefill on and off), builds
// every ledger TWICE on fresh timelines, and runs the typed schedule
// verifier (analysis/verifier.hpp) over each build — the second build also
// checks the canonical ledger hash against the first, so any
// non-determinism (hash-map iteration, uninitialized state, host-dependent
// ordering) fails the gate even when both builds are individually legal.
//
//   schedule_lint [--grid=small|full] [--verbose]
//     exit 0: every ledger in the grid verified clean
//     exit 1: at least one diagnostic (all printed, with stable codes)
//     exit 2: usage error
//
//   schedule_lint --tamper
//     Self-test: deliberately corrupts a schedule and exits 1 iff the
//     verifier catches it — registered in ctest with WILL_FAIL so CI
//     proves the gate can actually fail.
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "core/schedules.hpp"

namespace {

using namespace tfacc;

struct Lint {
  int ledgers = 0;
  int failures = 0;
  bool verbose = false;
};

/// Run one grid case: `build` constructs the ledger on a fresh timeline and
/// returns its verification (so every call is an independent rebuild). The
/// second build must reproduce the first's hash bit for bit.
void lint_case(Lint& lint, const std::string& name,
               const std::function<VerifyResult(const VerifyOptions&)>& build,
               bool program_order) {
  VerifyOptions opts;
  opts.program_order = program_order;
  const VerifyResult first = build(opts);
  opts.expect_hash = first.hash;
  const VerifyResult rebuild = build(opts);

  for (const auto* res : {&first, &rebuild}) {
    ++lint.ledgers;
    if (res->ok()) continue;
    ++lint.failures;
    std::fprintf(stderr, "FAIL %s%s\n%s\n", name.c_str(),
                 res == &rebuild ? " (rebuild)" : "",
                 res->to_string().c_str());
  }
  if (lint.verbose)
    std::printf("ok   %-60s hash=%016llx\n", name.c_str(),
                static_cast<unsigned long long>(first.hash));
}

std::string tag(const std::string& base, bool interleave) {
  return base + (interleave ? " [greedy]" : " [program-order]");
}

/// A sentence's encoder plans (MHA + FFN per layer), the prefill workload.
std::vector<SublayerPlan> encoder_plans(int rows, int d_model, int num_heads,
                                        int d_ff, int layers) {
  std::vector<SublayerPlan> subs;
  for (int l = 0; l < layers; ++l) {
    subs.push_back(SublayerPlan::mha_prefill("enc" + std::to_string(2 * l),
                                             rows, rows, d_model, num_heads,
                                             rows));
    subs.push_back(SublayerPlan::ffn("enc" + std::to_string(2 * l + 1), rows,
                                     d_model, d_ff));
  }
  return subs;
}

/// The packed decode step's sublayers: self MHA, cross MHA, FFN per block.
std::vector<SublayerPlan> decode_plans(const std::vector<int>& totals,
                                       int d_model, int num_heads, int d_ff,
                                       int blocks) {
  const int slots = static_cast<int>(totals.size());
  std::vector<SublayerPlan> subs;
  for (int b = 0; b < blocks; ++b) {
    const std::string p = "dec" + std::to_string(b);
    subs.push_back(SublayerPlan::mha_cached_batch(p + ".self", totals, d_model,
                                                  num_heads, slots));
    subs.push_back(SublayerPlan::mha_cached_batch(p + ".cross", totals,
                                                  d_model, num_heads, 0));
    subs.push_back(SublayerPlan::ffn(p + ".ffn", slots, d_model, d_ff));
  }
  return subs;
}

void sweep(Lint& lint, bool full) {
  const std::vector<int> slot_grid = {1, 8, 16};
  const std::vector<int> chunk_grid = full ? std::vector<int>{1, 4, 16}
                                           : std::vector<int>{1, 16};
  const std::vector<int> seq_grid = full ? std::vector<int>{16, 33, 64}
                                         : std::vector<int>{16, 64};

  for (const bool interleave : {true, false}) {
    AcceleratorConfig cfg;
    cfg.interleave_decode = interleave;
    const bool cached_po = cached_policy(cfg) == IssuePolicy::kProgramOrder;

    // schedule_mha — Algorithm 1, always pinned to program order.
    for (const int s : seq_grid)
      lint_case(
          lint, tag("mha s=" + std::to_string(s), interleave),
          [&, s](const VerifyOptions& o) {
            Timeline tl;
            const ScheduledRun r = schedule_mha(cfg, tl, s, s, 512, 8);
            return verify_schedule(r.graph, r.stats, o);
          },
          /*program_order=*/true);

    // schedule_ffn — greedy, no softmax edges.
    for (const int rows : {1, 16, 64})
      lint_case(
          lint, tag("ffn rows=" + std::to_string(rows), interleave),
          [&, rows](const VerifyOptions& o) {
            Timeline tl;
            const ScheduledRun r = schedule_ffn(cfg, tl, rows, 512, 2048);
            return verify_schedule(r.graph, r.stats, o);
          },
          /*program_order=*/false);

    // schedule_mha_cached — incremental decode, policy from the knob.
    for (const int total : {8, 64})
      for (const int project : {0, 1})
        lint_case(
            lint,
            tag("mha_cached total=" + std::to_string(total) +
                    " project=" + std::to_string(project),
                interleave),
            [&, total, project](const VerifyOptions& o) {
              Timeline tl;
              const ScheduledRun r = schedule_mha_cached(
                  cfg, tl, 1, total, 512, 8, project);
              return verify_schedule(r.graph, r.stats, o);
            },
            cached_po);

    // schedule_mha_cached_batch — packed decode across the slot grid.
    for (const int slots : slot_grid)
      for (const int project : {0, slots}) {
        std::vector<int> totals;
        for (int r = 0; r < slots; ++r) totals.push_back(3 + (5 * r) % 11);
        lint_case(
            lint,
            tag("mha_cached_batch slots=" + std::to_string(slots) +
                    " project=" + std::to_string(project),
                interleave),
            [&, totals, project](const VerifyOptions& o) {
              Timeline tl;
              const ScheduledRun r = schedule_mha_cached_batch(
                  cfg, tl, totals, 512, 8, project);
              return verify_schedule(r.graph, r.stats, o);
            },
            cached_po);
      }

    // The decode step, fused (one cross-sublayer ledger) and unfused
    // (per-sublayer ledgers, each cold) — the fuse_decode_step knob.
    for (const int slots : slot_grid) {
      std::vector<int> totals;
      for (int r = 0; r < slots; ++r) totals.push_back(4 + (3 * r) % 7);
      const auto subs = decode_plans(totals, 128, 2, 512, 2);
      lint_case(
          lint,
          tag("decode_step fused slots=" + std::to_string(slots), interleave),
          [&, subs](const VerifyOptions& o) {
            Timeline tl;
            return verify_fused(schedule_decode_step(cfg, tl, subs), o);
          },
          cached_po);
      for (const SublayerPlan& sub : subs)
        lint_case(
            lint,
            tag("decode_step unfused " + sub.label +
                    " slots=" + std::to_string(slots),
                interleave),
            [&, sub](const VerifyOptions& o) {
              Timeline tl;
              return verify_fused(
                  schedule_fused(cfg, tl, {sub}, /*chain=*/false,
                                 cached_policy(cfg)),
                  o);
            },
            cached_po);
    }

    // Prefill chunks, standalone (pack_prefill off) and spliced into a
    // mixed prefill/decode step ledger (pack_prefill on), across the chunk
    // grid. The mixed ledger exercises the prefetch chain across the
    // prefill/decode seam — the PR 6 invariant.
    for (const int chunk_rows : chunk_grid) {
      cfg.prefill_chunk_rows = chunk_rows;
      const auto chunks =
          chunk_prefill(encoder_plans(13, 128, 2, 512, 1), chunk_rows);
      for (std::size_t i = 0; i < chunks.size(); ++i)
        lint_case(
            lint,
            tag("prefill standalone chunk " + std::to_string(i) + "/" +
                    std::to_string(chunks.size()) +
                    " chunk_rows=" + std::to_string(chunk_rows),
                interleave),
            [&, chunk = chunks[i]](const VerifyOptions& o) {
              Timeline tl;
              const ScheduledRun r = schedule_prefill(cfg, tl, chunk);
              return verify_schedule(r.graph, r.stats, o);
            },
            cached_po);

      for (const int slots : slot_grid) {
        std::vector<FusedLane> lanes;
        for (std::size_t i = 0; i < 2 && i < chunks.size(); ++i)
          lanes.push_back(FusedLane{{chunks[i]}, true});
        std::vector<int> totals;
        for (int r = 0; r < slots; ++r) totals.push_back(3 + (5 * r) % 11);
        lanes.push_back(FusedLane{decode_plans(totals, 128, 2, 512, 1), false});
        lint_case(
            lint,
            tag("mixed_step slots=" + std::to_string(slots) +
                    " chunk_rows=" + std::to_string(chunk_rows),
                interleave),
            [&, lanes](const VerifyOptions& o) {
              Timeline tl;
              return verify_fused(
                  schedule_fused_lanes(cfg, tl, lanes, cached_policy(cfg)), o);
            },
            cached_po);
      }
    }
  }
}

/// --tamper: corrupt a legal schedule and demand the verifier object. Exits
/// 1 (via the caller) iff diagnostics fire — the WILL_FAIL ctest entry.
int tamper() {
  AcceleratorConfig cfg;
  Timeline tl;
  ScheduledRun run = schedule_ffn(cfg, tl, 16, 512, 2048);
  // Slide the last op onto cycle 0: breaks its data deps and double-books
  // whatever resource owned cycle 0.
  Interval& iv = run.stats.intervals.back();
  const Cycle dur = iv.duration();
  iv.start = 0;
  iv.end = dur;
  run.stats.result_ready.back() =
      iv.end + run.graph.ops().back().result_latency;
  const VerifyResult res = verify_schedule(run.graph, run.stats);
  std::fprintf(stderr, "%s\n", res.to_string().c_str());
  return res.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  Lint lint;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--grid=small") == 0) {
      full = false;
    } else if (std::strcmp(a, "--grid=full") == 0) {
      full = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      lint.verbose = true;
    } else if (std::strcmp(a, "--tamper") == 0) {
      return tamper();
    } else {
      std::fprintf(stderr,
                   "usage: schedule_lint [--grid=small|full] [--verbose] "
                   "[--tamper]\n");
      return 2;
    }
  }

  sweep(lint, full);
  std::printf("schedule_lint: %d ledgers verified (%s grid), %d failure%s\n",
              lint.ledgers, full ? "full" : "small", lint.failures,
              lint.failures == 1 ? "" : "s");
  return lint.failures == 0 ? 0 : 1;
}
